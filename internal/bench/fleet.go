package bench

import (
	"encoding/json"
	"fmt"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/vtime/domain"
)

// FleetRun is the multi-host workload the parallel executive was built
// for: H independent capture hosts — each a full NIC + engine +
// pkt_handler stack with its own seeded traffic, registry, and (for
// chaos fleets) fault injector — reporting to one aggregation plane
// over the cross-domain mailbox fabric. It scales the paper's
// single-host experiments to the deployment the paper motivates
// (§1: commodity capture boxes at multiple vantage points feeding a
// central monitor).
//
// Hosts are the *logical* domains: host h is structurally independent
// of every other host and talks to the collector only through Send.
// Config.Domains is the *execution* domain count — logical domain h
// runs on execution domain h mod Domains — and is pure placement: the
// FleetReport is byte-identical for every Domains and Workers setting.
type FleetRun struct {
	Spec EngineSpec
	// Hosts is the number of capture hosts (default 2).
	Hosts int
	// Queues per host NIC (default 1) and handler load X, as elsewhere.
	Queues int
	X      int
	// Packets is the per-host offered packet count.
	Packets uint64
	// FrameLen (default 60) and PacketsPerSec (default wire rate), per
	// host.
	FrameLen      int
	PacketsPerSec float64
	// Seed is the fleet seed; host h derives its private traffic stream
	// with vtime.SplitSeed(Seed, h), so host workloads are decorrelated
	// but placement-independent.
	Seed uint64

	// Domains is the execution domain count (default 1: sequential).
	// Workers bounds in-window parallelism (0: the shared budget).
	Domains int
	Workers int

	// MilestoneEvery makes each host report a progress milestone to the
	// collector every that-many processed packets (default 1000).
	MilestoneEvery uint64
	// LinkLatency is the host-to-collector mailbox latency (default
	// 10 µs). It is the executive's conservative lookahead, so it also
	// sets the parallel window width.
	LinkLatency vtime.Time

	// Faults, when non-empty, installs the schedule on every host with
	// injector seed vtime.SplitSeed(FaultSeed, h); recovery actions are
	// then reported to the collector over the same mailbox fabric.
	Faults    faults.Schedule
	FaultSeed uint64

	// Traced attaches a flight recorder to every host; the per-host
	// records are merged into FleetResult.Record in canonical order.
	Traced bool
}

// fleetMsg is one aggregation-bus message: a progress milestone or a
// recovery action observed on a host.
type fleetMsg struct {
	host int
	kind string // "milestone" or a recovery action kind
	arg  uint64
}

// fleetCollector is the aggregation plane. It lives in execution
// domain 0 and consumes the canonical merged delivery stream; its
// ledger checksum is order-sensitive, so it witnesses not just message
// conservation but the exact cross-domain delivery order.
type fleetCollector struct {
	ledger     *fnvWriter
	milestones uint64
	actions    uint64
	processed  []uint64 // per-host milestone high-water mark
}

func (c *fleetCollector) receive(at vtime.Time, payload any) {
	m := payload.(fleetMsg)
	fmt.Fprintf(c.ledger, "%d|%d|%s|%d\n", at, m.host, m.kind, m.arg)
	if m.kind == "milestone" {
		c.milestones++
		if m.arg > c.processed[m.host] {
			c.processed[m.host] = m.arg
		}
		return
	}
	c.actions++
}

// fnvWriter is an io.Writer over an FNV-1a state.
type fnvWriter struct{ h uint64 }

func newFNVWriter() *fnvWriter { return &fnvWriter{h: 0xcbf29ce484222325} }

func (w *fnvWriter) Write(p []byte) (int, error) {
	h := w.h
	for _, b := range p {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	w.h = h
	return len(p), nil
}

func (w *fnvWriter) sum() string { return fmt.Sprintf("%016x", w.h) }

// FleetReport is the deterministic record of a fleet run: aggregate
// outcome, the collector's view of the cross-domain traffic, and the
// full per-host run reports. Byte-identical for every execution domain
// and worker count — the property TestFleetPlacementEquivalence and
// the pdes_scaling bench digests pin.
type FleetReport struct {
	Scenario string `json:"scenario"`
	Engine   string `json:"engine"`
	Hosts    int    `json:"hosts"`

	Sent      uint64     `json:"sent"`
	Delivered uint64     `json:"delivered"`
	Processed uint64     `json:"processed"`
	Drops     uint64     `json:"drops"`
	EndNs     vtime.Time `json:"end_ns"`

	// Milestones / Actions count collector deliveries; Ledger is the
	// order-sensitive FNV-1a checksum of the collector's delivery
	// transcript.
	Milestones uint64 `json:"milestones"`
	Actions    uint64 `json:"actions,omitempty"`
	Ledger     string `json:"ledger"`

	PerHost []RunReport `json:"per_host"`
}

// Digest is the report's stable fingerprint, as RunReport.Digest.
func (fr FleetReport) Digest() string {
	b, err := json.Marshal(fr)
	if err != nil {
		panic(fmt.Sprintf("bench: marshaling FleetReport: %v", err))
	}
	w := newFNVWriter()
	w.Write(b) //nolint:errcheck // fnvWriter cannot fail
	return w.sum()
}

// FleetResult carries the report plus the merged flight-recorder record
// of a traced fleet run.
type FleetResult struct {
	Report FleetReport
	// Record is the canonical merge of the per-host records (zero when
	// the run was untraced). Each sub-record's Domain field is the
	// *host* index — the logical domain — never the execution domain,
	// which must not leak into output.
	Record obs.Record
}

// RunFleet executes a fleet run to completion.
func RunFleet(name string, cfg FleetRun) (FleetResult, error) {
	hosts := cfg.Hosts
	if hosts <= 0 {
		hosts = 2
	}
	queues := cfg.Queues
	if queues <= 0 {
		queues = 1
	}
	milestone := cfg.MilestoneEvery
	if milestone == 0 {
		milestone = 1000
	}
	link := cfg.LinkLatency
	if link == 0 {
		link = 10 * vtime.Microsecond
	}
	frameLen := cfg.FrameLen
	if frameLen == 0 {
		frameLen = 60
	}

	sim := domain.New(domain.Config{Domains: cfg.Domains, Workers: cfg.Workers})
	col := &fleetCollector{ledger: newFNVWriter(), processed: make([]uint64, hosts)}
	port := sim.NewPort(sim.Domain(0), link, col.receive)

	costs := engines.DefaultCosts()
	type host struct {
		handler *app.PktHandler
		eng     engines.Engine
		reg     *metrics.Registry
		rec     *obs.Recorder
		sent    *trace.DriveStats
	}
	hs := make([]host, hosts)
	// Construction order is the canonical placement-independent order:
	// hosts by index, one Tx per host (so tx id == host index + stable
	// offset), every component built against the host's domain
	// scheduler and nothing else.
	for h := 0; h < hosts; h++ {
		d := sim.Domain(h % sim.Domains())
		sched := d.Scheduler()
		reg := metrics.NewRegistry()
		var rec *obs.Recorder
		if cfg.Traced {
			rec = NewRecorder()
		}
		var inj *faults.Injector
		if len(cfg.Faults) > 0 {
			inj = faults.NewInjector(sched, vtime.SplitSeed(cfg.FaultSeed, uint64(h)))
			inj.Register(reg)
			inj.SetTrace(rec)
			if err := inj.Install(cfg.Faults); err != nil {
				return FleetResult{}, fmt.Errorf("bench: fleet host %d: %w", h, err)
			}
		}
		n := nic.New(sched, nic.Config{
			ID: h, RxQueues: queues, RingSize: 1024, Promiscuous: true,
			Metrics: reg, Faults: inj, Trace: rec, Domain: h,
		})
		handler := app.NewPktHandler(cfg.X, costs, queues)
		tx := sim.NewTx(d)
		hostIdx := h
		handler.OnProcessed = func(total uint64) {
			if total%milestone == 0 {
				tx.Send(port, fleetMsg{host: hostIdx, kind: "milestone", arg: total})
			}
		}
		eng, err := cfg.Spec.BuildWith(sched, n, costs, handler, func(c *core.Config) {
			c.Domain = hostIdx
			c.OnAction = func(kind string, queue int, at vtime.Time) {
				tx.Send(port, fleetMsg{host: hostIdx, kind: kind, arg: uint64(queue)})
			}
		})
		if err != nil {
			return FleetResult{}, fmt.Errorf("bench: fleet host %d: %w", h, err)
		}
		rate := n.LineRateBps()
		if cfg.PacketsPerSec > 0 {
			rate = cfg.PacketsPerSec * float64(frameLen+24) * 8
		}
		src := trace.NewConstantRate(trace.ConstantRateConfig{
			Packets:     cfg.Packets,
			FrameLen:    frameLen,
			LineRateBps: rate,
			Queues:      queues,
			Seed:        vtime.SplitSeed(cfg.Seed, uint64(h)),
		})
		st := trace.Drive(sched, n, src, nil)
		hs[h] = host{handler: handler, eng: eng, reg: reg, rec: rec, sent: st}
	}

	sim.Run()

	// Every host reports against the global drain time: per-domain
	// clocks stop wherever their last local event fell, which depends
	// on placement; the fleet-wide maximum does not.
	end := sim.Now()
	fr := FleetReport{
		Scenario: name, Engine: cfg.Spec.Name(), Hosts: hosts, EndNs: end,
		Milestones: col.milestones, Actions: col.actions,
		Ledger: col.ledger.sum(),
	}
	var records []obs.Record
	for h := range hs {
		res := Result{
			Spec: cfg.Spec, Sent: hs[h].sent.Sent, Stats: hs[h].eng.Stats(),
			Handler: hs[h].handler, Metrics: hs[h].reg, End: end,
		}
		rep := res.Report(fmt.Sprintf("%s/host%d", name, h))
		fr.Sent += rep.Sent
		fr.Delivered += rep.Totals.Delivered
		fr.Processed += rep.Handler.Processed
		fr.Drops += rep.Totals.TotalDrops()
		fr.PerHost = append(fr.PerHost, rep)
		if cfg.Traced {
			r := hs[h].rec.Record(rep.Scenario, end)
			r.Tag(h)
			records = append(records, r)
		}
	}
	out := FleetResult{Report: fr}
	if cfg.Traced {
		out.Record = obs.MergeRecords(name, end, records)
	}
	return out, nil
}
