package bench

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAll(t *testing.T) {
	var ran [100]atomic.Bool
	if err := forEachWorkers(len(ran), 4, func(i int) error {
		if ran[i].Swap(true) {
			t.Errorf("job %d ran twice", i)
		}
		return nil
	}); err != nil {
		t.Fatalf("forEach: %v", err)
	}
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("job %d never ran", i)
		}
	}
}

func TestForEachSerialStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int32
	err := forEachWorkers(100, 1, func(i int) error {
		started.Add(1)
		if i == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if got := started.Load(); got != 3 {
		t.Fatalf("started %d jobs, want 3", got)
	}
}

// TestForEachStopsWorkersAfterError verifies that once one job fails, the
// other workers stop at their current job boundary instead of draining the
// remaining work: with 4 workers and 64 jobs, exactly the 4 in-flight jobs
// run.
func TestForEachStopsWorkersAfterError(t *testing.T) {
	const workers = 4
	// Workers now come from the process-wide budget in
	// internal/vtime/domain, which is capped by GOMAXPROCS; widen it so
	// all four really run concurrently even on a small machine.
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)
	boom := errors.New("boom")
	var started atomic.Int32
	var gate sync.WaitGroup
	gate.Add(workers) // released when every worker holds a job
	err := forEachWorkers(64, workers, func(i int) error {
		started.Add(1)
		gate.Done()
		gate.Wait()
		if i == 0 {
			return boom // fails while the others sleep below
		}
		// Give fail() ample time to set the stop flag before these
		// workers look for their next job.
		time.Sleep(100 * time.Millisecond)
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if got := started.Load(); got != workers {
		t.Fatalf("started %d jobs after error, want %d", got, workers)
	}
}
