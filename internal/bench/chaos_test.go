package bench

import (
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/faults"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// TestChaosScenariosDeterministic runs every chaos regression scenario
// twice and requires byte-identical reports: fault injection, recovery,
// and all of their accounting are functions of the seeds alone.
func TestChaosScenariosDeterministic(t *testing.T) {
	for _, sc := range ChaosScenarios() {
		first, err := sc.Report()
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		second, err := sc.Report()
		if err != nil {
			t.Fatalf("%s rerun: %v", sc.Name, err)
		}
		if d1, d2 := first.Digest(), second.Digest(); d1 != d2 {
			t.Errorf("%s: digest changed across identical runs: %s vs %s", sc.Name, d1, d2)
		}
		// Packet conservation: every offered packet is delivered or
		// counted in exactly one drop class.
		tot := first.Totals
		accounted := tot.Delivered + tot.TotalDrops()
		if accounted != first.Sent {
			t.Errorf("%s: delivered %d + drops %d = %d, want sent %d",
				sc.Name, tot.Delivered, tot.TotalDrops(), accounted, first.Sent)
		}
	}
}

// TestDegradationWireCAPBeatsBaselines runs the composite storm (queue
// hang + handler stall) against WireCAP and every baseline under
// identical seeds and requires WireCAP's delivered fraction to strictly
// exceed each baseline's: the recovery machinery must buy something.
func TestDegradationWireCAPBeatsBaselines(t *testing.T) {
	frac := func(spec EngineSpec) float64 {
		res, err := DegradationRun(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		if res.Sent == 0 {
			t.Fatalf("%s: no packets sent", spec.Name())
		}
		return float64(res.Stats.Totals().Delivered) / float64(res.Sent)
	}
	wirecap := frac(WireCAPA(64, 32, 60))
	for _, spec := range []EngineSpec{DNA, NETMAP, PFRing, PSIOE, RawSocket} {
		if b := frac(spec); wirecap <= b {
			t.Errorf("WireCAP delivered fraction %.4f not strictly above %s's %.4f",
				wirecap, spec.Name(), b)
		}
	}
}

// seqSource generates valid UDP frames carrying (flow id, sequence
// number) payloads, round-robin over flows that RSS-steer to known
// queues, paced at a fixed interval. It gives the property tests ground
// truth for duplicate and ordering checks.
type seqSource struct {
	builder  *packet.Builder
	flows    []packet.FlowKey
	seq      []uint32
	buf      []byte
	next     int
	emitted  uint64
	total    uint64
	interval vtime.Time
	now      vtime.Time
}

func newSeqSource(queues, flowsPerQueue int, total uint64, interval vtime.Time, seed uint64) *seqSource {
	r := vtime.NewRand(seed)
	var flows []packet.FlowKey
	for q := 0; q < queues; q++ {
		for i := 0; i < flowsPerQueue; i++ {
			flows = append(flows, trace.FlowForQueue(r, queues, q, packet.ProtoUDP, 0x0a000000, 16))
		}
	}
	return &seqSource{
		builder: packet.NewBuilder(), flows: flows,
		seq: make([]uint32, len(flows)), buf: make([]byte, 256),
		total: total, interval: interval,
	}
}

func (s *seqSource) Next() ([]byte, vtime.Time, bool) {
	if s.emitted >= s.total {
		return nil, 0, false
	}
	f := s.next % len(s.flows)
	s.next++
	var payload [8]byte
	binary.BigEndian.PutUint32(payload[0:4], uint32(f))
	binary.BigEndian.PutUint32(payload[4:8], s.seq[f])
	s.seq[f]++
	frame := s.builder.Build(s.buf, s.flows[f], payload[:])
	s.emitted++
	ts := s.now
	s.now += s.interval
	return frame, ts, true
}

// seqRecorder checks delivered packets against the seqSource ground
// truth: no duplicates, per-flow order preserved, payloads decodable
// (recovery must have dropped every corrupted frame).
type seqRecorder struct {
	seen       map[uint64]bool
	lastSeq    map[uint32]int64
	count      uint64
	dups       int
	reorders   int
	decodeErrs int
}

func newSeqRecorder() *seqRecorder {
	return &seqRecorder{seen: make(map[uint64]bool), lastSeq: make(map[uint32]int64)}
}

func (r *seqRecorder) Cost(int, []byte) vtime.Time { return 500 * vtime.Nanosecond }

func (r *seqRecorder) Handle(q int, data []byte, ts vtime.Time, done func()) {
	defer done()
	var d packet.Decoded
	if err := packet.Decode(data, &d); err != nil {
		r.decodeErrs++
		return
	}
	p := d.Payload()
	if len(p) < 8 {
		r.decodeErrs++
		return
	}
	flow := binary.BigEndian.Uint32(p[0:4])
	seq := binary.BigEndian.Uint32(p[4:8])
	key := uint64(flow)<<32 | uint64(seq)
	if r.seen[key] {
		r.dups++
	}
	r.seen[key] = true
	if last, ok := r.lastSeq[flow]; ok && int64(seq) <= last {
		r.reorders++
	}
	r.lastSeq[flow] = int64(seq)
	r.count++
}

// chaosPropertyRun executes one randomized fault storm against
// WireCAP-B and returns the recorder plus the final accounting.
func chaosPropertyRun(t *testing.T, seed uint64) (*seqRecorder, nic.Stats, engines.QueueStats, uint64) {
	t.Helper()
	const queues = 2
	sched := vtime.NewScheduler()
	inj := faults.NewInjector(sched, seed^0xc0ffee)
	if err := inj.Install(faults.RandomSchedule(seed, faults.RandomConfig{
		Queues:  queues,
		Events:  10,
		Horizon: 40 * vtime.Millisecond,
		MaxDur:  10 * vtime.Millisecond,
	})); err != nil {
		t.Fatal(err)
	}
	n := nic.New(sched, nic.Config{
		ID: 0, RxQueues: queues, RingSize: 256, Promiscuous: true, Faults: inj,
	})
	rec := newSeqRecorder()
	eng, err := core.New(sched, n, core.Config{M: 16, R: 16, Costs: engines.DefaultCosts()}, rec)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	// 5000 packets at 100 kp/s span 50 ms — past the 40 ms fault horizon,
	// so the run also demonstrates recovery after the storm passes.
	src := newSeqSource(queues, 4, 5000, 10*vtime.Microsecond, seed)
	st := trace.Drive(sched, n, src, nil)
	sched.Run()
	return rec, n.Stats(), eng.Stats().Totals(), st.Sent
}

// TestChaosProperties fuzzes WireCAP-B with randomized fault schedules
// and checks the recovery invariants the design promises: no packet is
// delivered twice, per-flow order survives quarantine re-steering (basic
// mode: no offloading, so flow order is well-defined), no corrupted
// frame reaches the application, every packet is conserved, and the
// virtual event queue always drains (the run returning at all proves no
// deadlock or livelock).
func TestChaosProperties(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rec, ns, tot, sent := chaosPropertyRun(t, seed)
		if rec.dups > 0 {
			t.Errorf("seed %d: %d duplicate deliveries", seed, rec.dups)
		}
		if rec.reorders > 0 {
			t.Errorf("seed %d: %d per-flow reorderings", seed, rec.reorders)
		}
		if rec.decodeErrs > 0 {
			t.Errorf("seed %d: %d undecodable (corrupt) frames delivered", seed, rec.decodeErrs)
		}
		if rec.count != tot.Delivered {
			t.Errorf("seed %d: handler saw %d packets, engine counted %d delivered",
				seed, rec.count, tot.Delivered)
		}
		accounted := ns.LinkDrops + ns.Filtered + tot.Delivered + tot.TotalDrops()
		if accounted != sent {
			t.Errorf("seed %d: conservation broken: link %d + filtered %d + delivered %d + drops %d = %d, want sent %d",
				seed, ns.LinkDrops, ns.Filtered, tot.Delivered, tot.TotalDrops(), accounted, sent)
		}
	}
}

// TestChaosPropertyRunDeterministic runs the same randomized storm twice
// and requires identical outcomes — determinism holds not just for the
// curated scenarios but for arbitrary schedules.
func TestChaosPropertyRunDeterministic(t *testing.T) {
	recA, nsA, totA, sentA := chaosPropertyRun(t, 3)
	recB, nsB, totB, sentB := chaosPropertyRun(t, 3)
	if recA.count != recB.count || nsA.LinkDrops != nsB.LinkDrops || totA != totB || sentA != sentB {
		t.Errorf("identical seeds diverged: counts %d/%d, totals %+v vs %+v",
			recA.count, recB.count, totA, totB)
	}
}
