package bench

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestAblationFlushBoundsLatency(t *testing.T) {
	table, err := AblationFlush(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// Row 0: disabled — some packets never delivered.
	delivered, _ := strconv.Atoi(table.Rows[0][1])
	sent, _ := strconv.Atoi(table.Rows[0][2])
	if delivered >= sent {
		t.Fatalf("disabled flush delivered everything (%d of %d)", delivered, sent)
	}
	// Every enabled timeout delivers everything.
	for _, row := range table.Rows[1:] {
		d, _ := strconv.Atoi(row[1])
		s, _ := strconv.Atoi(row[2])
		if d != s {
			t.Fatalf("timeout %s delivered %d of %d", row[0], d, s)
		}
	}
	// Shorter timeouts mean more flush copies.
	c1, _ := strconv.Atoi(table.Rows[1][6])
	c3, _ := strconv.Atoi(table.Rows[3][6])
	if c1 <= c3 {
		t.Fatalf("flush copies not monotone: %d (0.5ms) vs %d (10ms)", c1, c3)
	}
}

func TestAblationOffloadPolicyAllEffective(t *testing.T) {
	table, err := AblationOffloadPolicy(fast)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		if row[1] != "0.0%" {
			t.Errorf("policy %s drop rate %s, want 0.0%%", row[0], row[1])
		}
		offloaded, _ := strconv.Atoi(row[2])
		if offloaded == 0 {
			t.Errorf("policy %s offloaded nothing", row[0])
		}
	}
}

func TestAblationSteeringTradeoff(t *testing.T) {
	table, err := AblationSteering(fast)
	if err != nil {
		t.Fatal(err)
	}
	rss, rr := table.Rows[0], table.Rows[1]
	// RSS: drops under imbalance, but zero split flows.
	if !strings.HasPrefix(rss[2], "0 of") {
		t.Errorf("RSS split flows: %s", rss[2])
	}
	if rss[1] == "0.0%" {
		t.Error("RSS showed no drops under imbalance")
	}
	// Round-robin: no drops, but flows split across threads.
	if rr[1] != "0.0%" {
		t.Errorf("round-robin drop rate %s", rr[1])
	}
	if strings.HasPrefix(rr[2], "0 of") {
		t.Error("round-robin split no flows")
	}
}

func TestExtension40GEQueueScaling(t *testing.T) {
	opt := fast
	opt.ScalePackets = 200_000
	table, err := Extension40GE(opt)
	if err != nil {
		t.Fatal(err)
	}
	// 2 queues cannot absorb 59.5 Mp/s with 50 ns/packet threads; 8 can.
	if table.Rows[0][2] == "0.0%" {
		t.Error("2 queues at 40 GbE showed no drops")
	}
	if table.Rows[2][2] != "0.0%" {
		t.Errorf("8 queues at 40 GbE dropped: %s", table.Rows[2][2])
	}
}

func TestAblationsRunner(t *testing.T) {
	var buf bytes.Buffer
	opt := fast
	opt.ScalePackets = 100_000
	if err := Ablations(opt, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Ablation A1", "Ablation A2", "Ablation A3", "Extension E1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %s", want)
		}
	}
}

func TestExtensionDPDKOrdering(t *testing.T) {
	table, err := ExtensionDPDK(fast)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(s string) float64 {
		var v float64
		fmt.Sscanf(s, "%f%%", &v)
		return v
	}
	noOff := parse(table.Rows[0][1])
	appOff := parse(table.Rows[1][1])
	wirecap := parse(table.Rows[2][1])
	if !(noOff > appOff && appOff > wirecap) {
		t.Fatalf("ordering wrong: DPDK %.1f, DPDK+offload %.1f, WireCAP %.1f",
			noOff, appOff, wirecap)
	}
	if wirecap > 1 {
		t.Fatalf("WireCAP dropped %.1f%%", wirecap)
	}
	if table.Rows[1][4] == "0" {
		t.Fatal("DPDK+app-offload steered nothing")
	}
}
