package bench

import (
	"fmt"
	"io"

	"repro/internal/app"
	"repro/internal/engines"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// ChaosRun drives a constant-rate workload into an engine while a
// seeded fault injector perturbs the NIC, the memory pools, and the
// consumer threads on the same virtual clock. Everything — traffic,
// fault schedule, recovery responses — is derived from the two seeds,
// so a chaos run is exactly as replayable as a clean one: same seeds,
// same digest.
type ChaosRun struct {
	Spec    EngineSpec
	Queues  int // default 1
	X       int
	Packets uint64
	// FrameLen (default 60) and PacketsPerSec (default wire rate), as in
	// ConstantRun.
	FrameLen      int
	PacketsPerSec float64
	Seed          uint64

	// Faults is the deterministic fault schedule; FaultSeed seeds the
	// injector's own randomness (corruption byte positions etc.),
	// independent of the traffic seed.
	Faults    faults.Schedule
	FaultSeed uint64

	// Trace attaches a flight recorder to the NIC and the injector so
	// fault windows annotate overlapping packet spans.
	Trace *obs.Recorder
	// Domains / Workers: as in ConstantRun — the run is one structural
	// unit in domain 0, so its report is byte-identical for every value.
	Domains int
	Workers int
}

// RunChaos executes the run to completion. The engine under test gets
// the injector through the NIC; WireCAP additionally activates its
// recovery machinery, baselines take the faults with no cure.
func RunChaos(cfg ChaosRun) (Result, error) {
	if cfg.Queues == 0 {
		cfg.Queues = 1
	}
	sim, sched := simFor(cfg.Domains, cfg.Workers)
	reg := metrics.NewRegistry()
	inj := faults.NewInjector(sched, cfg.FaultSeed)
	inj.Register(reg)
	inj.SetTrace(cfg.Trace)
	if err := inj.Install(cfg.Faults); err != nil {
		return Result{}, err
	}
	n := nic.New(sched, nic.Config{
		ID: 0, RxQueues: cfg.Queues, RingSize: 1024, Promiscuous: true,
		Metrics: reg, Faults: inj, Trace: cfg.Trace,
	})
	costs := engines.DefaultCosts()
	h := app.NewPktHandler(cfg.X, costs, cfg.Queues)
	eng, err := cfg.Spec.Build(sched, n, costs, h)
	if err != nil {
		return Result{}, err
	}
	frameLen := cfg.FrameLen
	if frameLen == 0 {
		frameLen = 60
	}
	rate := n.LineRateBps()
	if cfg.PacketsPerSec > 0 {
		rate = cfg.PacketsPerSec * float64(frameLen+24) * 8
	}
	src := trace.NewConstantRate(trace.ConstantRateConfig{
		Packets:     cfg.Packets,
		FrameLen:    frameLen,
		LineRateBps: rate,
		Queues:      cfg.Queues,
		Seed:        cfg.Seed,
	})
	st := trace.Drive(sched, n, src, nil)
	runSim(sim, sched)
	return Result{
		Spec: cfg.Spec, Sent: st.Sent, Stats: eng.Stats(), Handler: h,
		Metrics: reg, End: sched.Now(),
	}, nil
}

// ChaosScenarios is the chaos regression suite: three deterministic
// fault storms, each aimed at a different failure class the recovery
// machinery must absorb. They run under the same ci-gate digest
// discipline as the steady-state scenarios — graceful degradation is
// regression-tested, not aspirational.
func ChaosScenarios() []Scenario {
	chaos := func(name, about string, cfg ChaosRun) Scenario {
		run := func(rec *obs.Recorder, domains int) (RunReport, error) {
			c := cfg
			c.Trace = rec
			c.Domains = domains
			res, err := RunChaos(c)
			if err != nil {
				return RunReport{}, err
			}
			return res.Report(name), nil
		}
		return Scenario{Name: name, About: about,
			Run:        func() (RunReport, error) { return run(nil, 0) },
			RunTraced:  func(rec *obs.Recorder) (RunReport, error) { return run(rec, 0) },
			RunDomains: func(d int) (RunReport, error) { return run(nil, d) },
		}
	}
	// X=300 caps one handler thread near 38.8 kp/s, so the offered rates
	// below sit under per-queue capacity: the steady state is lossless
	// and every drop in the report is attributable to the fault storm.
	return []Scenario{
		chaos("chaos_queue_hang",
			"permanent hang of queue 1: quarantine + flow re-steer to healthy queues",
			ChaosRun{
				Spec: WireCAPA(64, 32, 60), Queues: 4, X: 300,
				Packets: 12_000, PacketsPerSec: 120_000,
				Seed: 21, FaultSeed: 101,
				Faults: faults.Schedule{
					{At: 10 * vtime.Millisecond, Kind: faults.QueueHang, Queue: 1},
				},
			}),
		chaos("chaos_pool_exhaustion",
			"long handler stall exhausts the pool, then transient alloc faults: reclaim + bounded retry",
			ChaosRun{
				Spec: WireCAPB(40, 32), Queues: 1, X: 300,
				Packets: 2_700, PacketsPerSec: 30_000,
				Seed: 22, FaultSeed: 102,
				Faults: faults.Schedule{
					{At: 10 * vtime.Millisecond, Dur: 50 * vtime.Millisecond, Kind: faults.HandlerStall},
					{At: 70 * vtime.Millisecond, Dur: 5 * vtime.Millisecond, Kind: faults.AllocFail},
				},
			}),
		chaos("chaos_corrupt_dma",
			"DMA corruption burst: frame-integrity validation drops bad frames, delivery continues",
			ChaosRun{
				Spec: WireCAPB(64, 32), Queues: 1, X: 300,
				Packets: 2_400, PacketsPerSec: 30_000,
				Seed: 23, FaultSeed: 103,
				Faults: faults.Schedule{
					{At: 20 * vtime.Millisecond, Dur: 30 * vtime.Millisecond,
						Kind: faults.DMACorrupt, Severity: 0.25},
				},
			}),
	}
}

// DegradationSchedule is the composite fault storm the cross-engine
// comparison (and the acceptance test) applies identically to WireCAP
// and every baseline: a permanent hang of queue 1 plus a long consumer
// stall on queue 2.
func DegradationSchedule() faults.Schedule {
	return faults.Schedule{
		{At: 10 * vtime.Millisecond, Kind: faults.QueueHang, Queue: 1},
		{At: 15 * vtime.Millisecond, Dur: 30 * vtime.Millisecond, Kind: faults.HandlerStall, Queue: 2},
	}
}

// DegradationRun executes the composite storm against one engine. All
// parameters other than the spec are fixed so every engine sees the
// identical workload and fault schedule.
func DegradationRun(spec EngineSpec) (Result, error) {
	return RunChaos(ChaosRun{
		Spec: spec, Queues: 4, X: 300,
		Packets: 12_000, PacketsPerSec: 120_000,
		Seed: 31, FaultSeed: 131, Faults: DegradationSchedule(),
	})
}

// Chaos renders the chaos experiment: first the three regression
// scenarios' outcome rows, then the graceful-degradation comparison —
// the same composite storm against WireCAP-A and every baseline, where
// the baselines take the faults with no recovery.
func Chaos(opt Options, w io.Writer) error {
	sc := Table{
		ID:    "chaos",
		Title: "Chaos scenarios: deterministic fault storms under WireCAP recovery",
		Columns: []string{"scenario", "engine", "sent", "delivered",
			"capture_drops", "delivery_drops", "corrupt_drops", "reclaim_drops",
			"drop_rate", "digest"},
	}
	for _, s := range ChaosScenarios() {
		rep, err := s.Report()
		if err != nil {
			return err
		}
		t := rep.Totals
		sc.Rows = append(sc.Rows, []string{
			s.Name, rep.Engine,
			fmt.Sprint(rep.Sent), fmt.Sprint(t.Delivered),
			fmt.Sprint(t.CaptureDrops), fmt.Sprint(t.DeliveryDrops),
			fmt.Sprint(t.CorruptDrops), fmt.Sprint(t.ReclaimDrops),
			fmt.Sprintf("%.4f", rep.DropRate), rep.Digest(),
		})
	}
	if err := opt.render(sc, w); err != nil {
		return err
	}

	deg := Table{
		ID:    "chaos-degradation",
		Title: "Graceful degradation: composite storm (queue hang + handler stall), same seeds for every engine",
		Columns: []string{"engine", "sent", "delivered", "delivered_frac",
			"capture_drops", "delivery_drops"},
	}
	for _, spec := range []EngineSpec{
		WireCAPA(64, 32, 60), DNA, NETMAP, PFRing, PSIOE, RawSocket,
	} {
		res, err := DegradationRun(spec)
		if err != nil {
			return err
		}
		t := res.Stats.Totals()
		deg.Rows = append(deg.Rows, []string{
			spec.Name(), fmt.Sprint(res.Sent), fmt.Sprint(t.Delivered),
			fmt.Sprintf("%.4f", ratio(t.Delivered, res.Sent)),
			fmt.Sprint(t.CaptureDrops), fmt.Sprint(t.DeliveryDrops),
		})
	}
	return opt.render(deg, w)
}
