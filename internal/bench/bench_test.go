package bench

import (
	"bytes"
	"strings"
	"testing"
)

// The tests here assert the qualitative claims of each paper artifact at
// reduced scale; cmd/experiments regenerates the full tables.

var fast = Options{Scale: 0.05, PMax: 100_000, ScalePackets: 100_000, Seed: 2014}

func TestSpecNames(t *testing.T) {
	cases := map[string]EngineSpec{
		"DNA":                     DNA,
		"NETMAP":                  NETMAP,
		"PF_RING":                 PFRing,
		"PSIOE":                   PSIOE,
		"PF_PACKET":               RawSocket,
		"WireCAP-B-(256,100)":     WireCAPB(256, 100),
		"WireCAP-A-(256,500,60%)": WireCAPA(256, 500, 60),
	}
	for want, spec := range cases {
		if got := spec.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestForwardingSupportMatchesPaper(t *testing.T) {
	if NETMAP.SupportsForwarding() {
		t.Error("NETMAP claims forwarding support; the paper could not run it")
	}
	for _, s := range []EngineSpec{DNA, PFRing, WireCAPB(256, 100), WireCAPA(256, 100, 60)} {
		if !s.SupportsForwarding() {
			t.Errorf("%s should support forwarding", s.Name())
		}
	}
}

func TestFig3Shape(t *testing.T) {
	table, prof, err := Fig3(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 7 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// Hot queue 0 dominates; queue 3 above background; bursts visible.
	if prof.Total(0) <= prof.Total(3) || prof.Total(3) <= prof.Total(1) {
		t.Fatalf("imbalance shape wrong: %d %d %d", prof.Total(0), prof.Total(3), prof.Total(1))
	}
	if prof.Peak(3) < 3*prof.Total(3)/uint64(len(prof.Series(3))+1) {
		t.Fatal("no short-term bursts on the warm queue")
	}
}

func TestTable1Shape(t *testing.T) {
	// Type-II engines suffer capture drops on the overloaded queue while
	// PF_RING converts them into delivery drops.
	res := map[string]Result{}
	offered := map[string][]uint64{}
	for _, spec := range []EngineSpec{NETMAP, DNA, PFRing} {
		r, off, err := RunBorder(BorderRun{Spec: spec, Queues: 6, X: 300, Scale: fast.Scale, Seed: fast.Seed})
		if err != nil {
			t.Fatal(err)
		}
		res[spec.Name()] = r
		offered[spec.Name()] = off
	}
	for _, name := range []string{"NETMAP", "DNA"} {
		r := res[name]
		if r.CaptureDropRate(0, offered[name][0]) < 0.25 {
			t.Errorf("%s q0 capture drops %.2f, want heavy", name, r.CaptureDropRate(0, offered[name][0]))
		}
		if r.DeliveryDropRate(0, offered[name][0]) != 0 {
			t.Errorf("%s reported delivery drops", name)
		}
	}
	pf := res["PF_RING"]
	if pf.CaptureDropRate(0, offered["PF_RING"][0]) > 0.05 {
		t.Errorf("PF_RING q0 capture drops %.2f, want ~0", pf.CaptureDropRate(0, offered["PF_RING"][0]))
	}
	if pf.DeliveryDropRate(0, offered["PF_RING"][0]) < 0.25 {
		t.Errorf("PF_RING q0 delivery drops %.2f, want heavy", pf.DeliveryDropRate(0, offered["PF_RING"][0]))
	}
	// NETMAP's bursty-queue capture drops exceed DNA's (batch release).
	nm := res["NETMAP"].CaptureDropRate(3, offered["NETMAP"][3])
	dna := res["DNA"].CaptureDropRate(3, offered["DNA"][3])
	if nm < dna {
		t.Errorf("NETMAP q3 %.3f < DNA q3 %.3f", nm, dna)
	}
}

func TestFig8Shape(t *testing.T) {
	// x=0 at wire rate: WireCAP and Type-II lossless, PF_RING drops.
	for _, spec := range []EngineSpec{DNA, NETMAP, WireCAPB(64, 100), WireCAPB(256, 500)} {
		r, err := RunConstant(ConstantRun{Spec: spec, Packets: 50_000, X: 0, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if r.DropRate() != 0 {
			t.Errorf("%s dropped %.2f at x=0", spec.Name(), r.DropRate())
		}
	}
	r, err := RunConstant(ConstantRun{Spec: PFRing, Packets: 50_000, X: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rate := r.DropRate(); rate < 0.1 {
		t.Errorf("PF_RING drop rate %.2f at wire rate, want substantial", rate)
	}
}

func TestFig9Shape(t *testing.T) {
	// x=300: buffering capability ordering at P=20,000:
	// Type-II (ring 1,024) drops heavily; WireCAP-B-(256,100) (25,600)
	// survives.
	dna, err := RunConstant(ConstantRun{Spec: DNA, Packets: 20_000, X: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := RunConstant(ConstantRun{Spec: WireCAPB(256, 100), Packets: 20_000, X: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dna.DropRate() < 0.5 {
		t.Errorf("DNA drop rate %.2f, want heavy", dna.DropRate())
	}
	if wc.DropRate() != 0 {
		t.Errorf("WireCAP-B-(256,100) drop rate %.2f, want 0", wc.DropRate())
	}
	// And (256,100) drops at 100k while (256,500) does not.
	wc100k, _ := RunConstant(ConstantRun{Spec: WireCAPB(256, 100), Packets: 100_000, X: 300, Seed: 1})
	wc500, _ := RunConstant(ConstantRun{Spec: WireCAPB(256, 500), Packets: 100_000, X: 300, Seed: 1})
	if wc100k.DropRate() < 0.5 || wc500.DropRate() != 0 {
		t.Errorf("capacity ordering wrong: (256,100)=%.2f (256,500)=%.2f",
			wc100k.DropRate(), wc500.DropRate())
	}
}

func TestFig10Shape(t *testing.T) {
	var rates []float64
	for _, spec := range []EngineSpec{WireCAPB(64, 400), WireCAPB(128, 200), WireCAPB(256, 100)} {
		r, err := RunConstant(ConstantRun{Spec: spec, Packets: 60_000, X: 300, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		rates = append(rates, r.DropRate())
	}
	for i := 1; i < len(rates); i++ {
		if d := rates[i] - rates[0]; d > 0.02 || d < -0.02 {
			t.Fatalf("R*M invariance violated: %v", rates)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	run := func(spec EngineSpec) float64 {
		r, _, err := RunBorder(BorderRun{Spec: spec, Queues: 6, X: 300, Scale: fast.Scale, Seed: fast.Seed})
		if err != nil {
			t.Fatal(err)
		}
		return r.DropRate()
	}
	basic := run(WireCAPB(256, 100))
	adv := run(WireCAPA(256, 100, 60))
	dna := run(DNA)
	if basic >= dna {
		t.Errorf("WireCAP-B %.2f >= DNA %.2f", basic, dna)
	}
	if adv > 0.02 {
		t.Errorf("WireCAP-A drop rate %.2f, want near zero", adv)
	}
	if basic < 2*adv {
		t.Errorf("offloading gained too little: basic %.3f adv %.3f", basic, adv)
	}
}

func TestFig13Shape(t *testing.T) {
	// Forwarding: the advanced mode sustains near-lossless end-to-end
	// delivery while the baselines drop.
	adv, _, err := RunBorder(BorderRun{
		Spec: WireCAPA(256, 100, 60), Queues: 4, X: 300,
		Scale: fast.Scale, Seed: fast.Seed, Forward: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Forwarded == 0 {
		t.Fatal("nothing forwarded")
	}
	if adv.DropRate() > 0.02 {
		t.Errorf("advanced forwarding drop rate %.2f", adv.DropRate())
	}
	dna, _, err := RunBorder(BorderRun{
		Spec: DNA, Queues: 4, X: 300, Scale: fast.Scale, Seed: fast.Seed, Forward: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dna.DropRate() < 5*adv.DropRate() {
		t.Errorf("DNA forwarding %.2f not clearly worse than advanced %.2f",
			dna.DropRate(), adv.DropRate())
	}
}

func TestFig14Shape(t *testing.T) {
	run := func(spec EngineSpec, q, frame int) float64 {
		rate, err := RunScalability(ScalabilityRun{
			Spec: spec, QueuesPerNIC: q, FrameLen: frame,
			Packets: fast.ScalePackets, Seed: fast.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rate
	}
	// 64-byte line rate saturates the bus for both engines...
	dna64 := run(DNA, 2, 60)
	wc64 := run(WireCAPA(256, 100, 60), 2, 60)
	if dna64 < 0.02 || wc64 < 0.02 {
		t.Errorf("no bus saturation at 64B: DNA %.3f WC %.3f", dna64, wc64)
	}
	// ...with WireCAP paying more than DNA...
	if wc64 <= dna64 {
		t.Errorf("WireCAP 64B %.3f <= DNA %.3f", wc64, dna64)
	}
	// ...while 100-byte line rate fits for both.
	if r := run(DNA, 2, 96); r > 0.005 {
		t.Errorf("DNA 100B drop rate %.3f", r)
	}
	if r := run(WireCAPA(256, 100, 60), 2, 96); r > 0.005 {
		t.Errorf("WireCAP 100B drop rate %.3f", r)
	}
	// The big-memory configuration degrades at 6 queues/NIC.
	small := run(WireCAPA(256, 100, 60), 6, 60)
	big := run(WireCAPA(256, 500, 60), 6, 60)
	if big <= small {
		t.Errorf("(256,500) at 6q %.3f not worse than (256,100) %.3f", big, small)
	}
}

func TestTableWriteAndByName(t *testing.T) {
	var buf bytes.Buffer
	table := Table{ID: "X", Title: "t", Columns: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	if err := table.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"=== X: t ===", "a  bb", "1  2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if err := ByName("nope", fast, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// A tiny end-to-end run through ByName.
	buf.Reset()
	tiny := fast
	tiny.PMax = 1000
	if err := ByName("fig10", tiny, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Fatal("fig10 output missing header")
	}
}

func TestCSVRendering(t *testing.T) {
	table := Table{ID: "T", Title: "t", Columns: []string{"a", "b"},
		Rows: [][]string{{"x,1", `say "hi"`}}}
	var buf bytes.Buffer
	if err := table.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# T: t", "a,b", `"x,1","say ""hi"""`} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
	// ByName honors the CSV option.
	buf.Reset()
	opt := fast
	opt.PMax = 1000
	opt.CSV = true
	if err := ByName("fig10", opt, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# Figure 10") {
		t.Fatalf("CSV output:\n%s", buf.String())
	}
}
