package bench

import (
	"fmt"
	"io"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// This file holds the ablation and extension studies DESIGN.md §5 calls
// out: design choices the paper fixes that the simulator lets us vary.

// AblationFlush compares WireCAP with and without the partial-chunk
// timeout flush, at several timeout values, on a light trickle where
// chunks rarely fill: the flush trades a little copying for bounded
// delivery latency (and, without it, a trickle is never delivered at
// all).
func AblationFlush(opt Options) (Table, error) {
	opt.setDefaults()
	t := Table{
		ID:    "Ablation A1",
		Title: "Partial-chunk flush: delivery vs latency on a 5 kp/s trickle (M=256)",
		Columns: []string{"flush timeout", "delivered", "of sent",
			"delay p50", "delay p99", "max", "flush copies"},
	}
	for _, timeout := range []vtime.Time{-1, 500 * vtime.Microsecond,
		2 * vtime.Millisecond, 10 * vtime.Millisecond} {
		sched := vtime.NewScheduler()
		n := nic.New(sched, nic.Config{ID: 0, RxQueues: 1, RingSize: 1024, Promiscuous: true})
		costs := engines.DefaultCosts()
		h := app.NewPktHandler(0, costs, 1)
		h.Clock = sched
		eng, err := core.New(sched, n, core.Config{
			M: 256, R: 100, FlushTimeout: timeout, Costs: costs,
		}, h)
		if err != nil {
			return Table{}, err
		}
		src := trace.NewConstantRate(trace.ConstantRateConfig{
			Packets: 5000, LineRateBps: 5000 * 84 * 8, Seed: opt.Seed, // 5 kp/s for 1 s
		})
		st := trace.Drive(sched, n, src, nil)
		sched.Run()
		label := timeout.String()
		if timeout < 0 {
			label = "disabled"
		}
		p50, p99, max := "-", "-", "-"
		if h.Processed > 0 {
			p50 = vtime.Time(h.DelayHist.Percentile(0.5)).String()
			p99 = vtime.Time(h.DelayHist.Percentile(0.99)).String()
			max = h.MaxDelay.String()
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%d", h.Processed),
			fmt.Sprintf("%d", st.Sent),
			p50, p99, max,
			fmt.Sprintf("%d", eng.QueueStats(0).ChunksFlushed),
		})
	}
	return t, nil
}

// AblationOffloadPolicy compares the offload-target policies (the paper
// uses least-loaded) under a single-queue overload with idle buddies.
func AblationOffloadPolicy(opt Options) (Table, error) {
	opt.setDefaults()
	t := Table{
		ID:      "Ablation A2",
		Title:   "Offload target policy under single-queue overload (4 queues, x=300)",
		Columns: []string{"policy", "drop rate", "chunks offloaded"},
	}
	policies := []struct {
		name string
		p    core.OffloadPolicy
	}{
		{"shortest-queue", core.OffloadShortest},
		{"round-robin", core.OffloadRoundRobin},
		{"random", core.OffloadRandom},
	}
	for _, pol := range policies {
		sched := vtime.NewScheduler()
		n := nic.New(sched, nic.Config{ID: 0, RxQueues: 4, RingSize: 1024, Promiscuous: true})
		costs := engines.DefaultCosts()
		h := app.NewPktHandler(300, costs, 4)
		eng, err := core.New(sched, n, core.Config{
			M: 256, R: 100, Mode: core.Advanced, Policy: pol.p, Costs: costs, Seed: opt.Seed,
		}, h)
		if err != nil {
			return Table{}, err
		}
		src := trace.NewConstantRate(trace.ConstantRateConfig{
			Packets: 200_000, Queues: 4, SingleQueue: true,
			LineRateBps: 130_000 * 84 * 8, Seed: opt.Seed,
		})
		st := trace.Drive(sched, n, src, nil)
		sched.Run()
		var offloaded uint64
		for q := 0; q < 4; q++ {
			offloaded += eng.QueueStats(q).ChunksOffloaded
		}
		t.Rows = append(t.Rows, []string{
			pol.name,
			pct(eng.Stats().DropRate(st.Sent)),
			fmt.Sprintf("%d", offloaded),
		})
	}
	return t, nil
}

// AblationSteering contrasts RSS with round-robin NIC steering (the
// paper's §2.3 "first approach"): round-robin balances perfectly — no
// drops — but sprays each flow across threads, destroying the flow
// affinity application logic depends on.
func AblationSteering(opt Options) (Table, error) {
	opt.setDefaults()
	t := Table{
		ID:      "Ablation A3",
		Title:   "NIC steering policy on the border trace (6 queues, x=300, DNA)",
		Columns: []string{"steering", "drop rate", "flows split across threads"},
	}
	for _, rr := range []bool{false, true} {
		sched := vtime.NewScheduler()
		var steering nic.Steering
		name := "RSS (per-flow)"
		if rr {
			steering = nic.NewRoundRobin(6)
			name = "round-robin"
		}
		n := nic.New(sched, nic.Config{
			ID: 0, RxQueues: 6, RingSize: 1024, Promiscuous: true, Steering: steering,
		})
		costs := engines.DefaultCosts()
		h := &flowAffinityHandler{
			cost:  costs.HandlerCost(300),
			queue: make(map[packet.FlowKey]int),
			split: make(map[packet.FlowKey]bool),
		}
		engines.NewDNA(sched, n, costs, h)
		src := trace.NewBorder(trace.BorderConfig{
			Queues: 6, Duration: vtime.Time(32 * opt.Scale * float64(vtime.Second)), Seed: opt.Seed,
		})
		st := trace.Drive(sched, n, src, nil)
		sched.Run()
		drops := st.Sent - h.processed
		t.Rows = append(t.Rows, []string{
			name,
			pct(ratio(drops, st.Sent)),
			fmt.Sprintf("%d of %d", len(h.split), len(h.queue)),
		})
	}
	return t, nil
}

// flowAffinityHandler records which thread (queue) saw each flow.
type flowAffinityHandler struct {
	cost      vtime.Time
	processed uint64
	queue     map[packet.FlowKey]int
	split     map[packet.FlowKey]bool
	dec       packet.Decoded
}

func (h *flowAffinityHandler) Cost(int, []byte) vtime.Time { return h.cost }

func (h *flowAffinityHandler) Handle(q int, data []byte, ts vtime.Time, done func()) {
	h.processed++
	if err := packet.Decode(data, &h.dec); err == nil {
		if prev, ok := h.queue[h.dec.Flow]; ok && prev != q {
			h.split[h.dec.Flow] = true
		} else {
			h.queue[h.dec.Flow] = q
		}
	}
	done()
}

// Extension40GE runs WireCAP at 40 GbE — the paper's stated next step
// ("In the near future, we will apply WireCAP for 40 GE networks") —
// showing how many queues a 40 GbE port needs before the per-queue
// packet rate fits a single x=0 thread.
func Extension40GE(opt Options) (Table, error) {
	opt.setDefaults()
	t := Table{
		ID:      "Extension E1",
		Title:   "WireCAP-A-(256,100,60%) at 40 GbE wire rate, 64B frames, x=0",
		Columns: []string{"queues", "offered Mp/s", "drop rate"},
	}
	for _, queues := range []int{2, 4, 8} {
		sched := vtime.NewScheduler()
		n := nic.New(sched, nic.Config{
			ID: 0, RxQueues: queues, RingSize: 1024,
			LineRateBps: 40e9, Promiscuous: true,
		})
		costs := engines.DefaultCosts()
		h := app.NewPktHandler(0, costs, queues)
		_, err := core.New(sched, n, core.Config{
			M: 256, R: 100, Mode: core.Advanced, ThresholdPct: 60, Costs: costs,
		}, h)
		if err != nil {
			return Table{}, err
		}
		src := trace.NewConstantRate(trace.ConstantRateConfig{
			Packets: opt.ScalePackets, Queues: queues,
			LineRateBps: 40e9, Seed: opt.Seed,
		})
		st := trace.Drive(sched, n, src, nil)
		sched.Run()
		ns := n.Stats()
		drop := ratio(st.Sent-uint64(h.Processed), st.Sent)
		_ = ns
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", queues),
			fmt.Sprintf("%.1f", float64(st.Sent)/st.Last.Seconds()/1e6),
			pct(drop),
		})
	}
	return t, nil
}

// AblationTimestamp quantifies the paper's §5c concern: batch (chunk)
// processing delays delivery, so a capture stack that stamped packets in
// software at delivery time — rather than in hardware at DMA time, as
// this simulator's NIC does — would see timestamp errors that grow with
// the batch size M and shrink with the packet rate. The reported mean
// delay *is* that error.
func AblationTimestamp(opt Options) (Table, error) {
	opt.setDefaults()
	t := Table{
		ID:      "Ablation A4",
		Title:   "Software-timestamp error vs chunk size and rate (flush 2 ms)",
		Columns: []string{"M", "rate", "sw-stamp error p50", "p99", "max"},
	}
	for _, m := range []int{64, 256, 1024} {
		for _, rate := range []float64{10_000, 100_000, 1_000_000} {
			sched := vtime.NewScheduler()
			n := nic.New(sched, nic.Config{ID: 0, RxQueues: 1, RingSize: 1024, Promiscuous: true})
			costs := engines.DefaultCosts()
			h := app.NewPktHandler(0, costs, 1)
			h.Clock = sched
			_, err := core.New(sched, n, core.Config{
				M: m, R: 40960 / m, FlushTimeout: 2 * vtime.Millisecond, Costs: costs,
			}, h)
			if err != nil {
				return Table{}, err
			}
			src := trace.NewConstantRate(trace.ConstantRateConfig{
				Packets: uint64(rate / 10), LineRateBps: rate * 84 * 8, Seed: opt.Seed,
			})
			trace.Drive(sched, n, src, nil)
			sched.Run()
			p50, p99, max := "-", "-", "-"
			if h.Processed > 0 {
				p50 = vtime.Time(h.DelayHist.Percentile(0.5)).String()
				p99 = vtime.Time(h.DelayHist.Percentile(0.99)).String()
				max = h.MaxDelay.String()
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", m),
				fmt.Sprintf("%.0f p/s", rate),
				p50, p99, max,
			})
		}
	}
	return t, nil
}

// Ablations runs every ablation/extension study.
func Ablations(opt Options, w io.Writer) error {
	for _, f := range []func(Options) (Table, error){
		AblationFlush, AblationOffloadPolicy, AblationSteering, AblationTimestamp,
		Extension40GE, ExtensionDPDK,
	} {
		t, err := f(opt)
		if err != nil {
			return err
		}
		if err := opt.render(t, w); err != nil {
			return err
		}
	}
	return nil
}
