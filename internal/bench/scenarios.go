package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
)

// Scenario is one deterministic run cmd/ci-gate replays against its
// committed baseline: a stable name plus the closure that executes it.
type Scenario struct {
	Name string
	// About says which paper setup the scenario exercises, for gate
	// failure messages and EXPERIMENTS.md.
	About string
	Run   func() (RunReport, error)
	// RunTraced executes the identical run with a flight recorder
	// attached. The recorder is a pure observer, so the report (and its
	// digest) must equal Run's — cmd/ci-gate asserts exactly that.
	RunTraced func(*obs.Recorder) (RunReport, error)
	// RunDomains executes the identical run under the parallel
	// discrete-event executive with the given number of time domains.
	// Parallel execution is an implementation detail, so the report
	// (and its digest) must equal Run's byte for byte for every domain
	// count — the equivalence property cmd/ci-gate's -domains check and
	// the golden tests assert.
	RunDomains func(domains int) (RunReport, error)
	// TracedRecord, when non-nil, executes the traced run and returns the
	// merged flight record alongside the report. Fleet scenarios set it —
	// their recorders live inside fleet.Run (one per host plus the
	// aggregator), so the external-recorder RunTraced shape cannot expose
	// the record. domains <= 0 keeps the scenario's default placement.
	TracedRecord func(domains int) (RunReport, obs.Record, error)
}

// NewRecorder builds a flight recorder keyed by the NIC's Toeplitz RSS
// hash, so per-flow sampling follows the same function hardware steers
// by — a sampled flow is sampled on whichever queue it lands on.
func NewRecorder() *obs.Recorder {
	return obs.New(obs.Config{
		FlowHash: func(f packet.FlowKey) uint32 {
			return nic.RSSHash(nic.DefaultRSSKey[:], f)
		},
	})
}

// ScenarioByName finds a CI scenario by its stable name.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range CIScenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Report executes the scenario.
func (s Scenario) Report() (RunReport, error) {
	rep, err := s.Run()
	if err != nil {
		return RunReport{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return rep, nil
}

// CIScenarios is the regression-gate suite: one scenario per engine
// family the simulator models, sized to finish in seconds while still
// driving every instrumented path (capture drops, delivery drops,
// offloading, flush timers, kernel livelock). Names are stable — they
// key entries in baselines.json.
func CIScenarios() []Scenario {
	constant := func(name, about string, spec EngineSpec, packets uint64) Scenario {
		run := func(rec *obs.Recorder, domains int) (RunReport, error) {
			res, err := RunConstant(ConstantRun{
				Spec: spec, Packets: packets, X: 300, Seed: 7, Trace: rec,
				Domains: domains,
			})
			if err != nil {
				return RunReport{}, err
			}
			return res.Report(name), nil
		}
		return Scenario{Name: name, About: about,
			Run:        func() (RunReport, error) { return run(nil, 0) },
			RunTraced:  func(rec *obs.Recorder) (RunReport, error) { return run(rec, 0) },
			RunDomains: func(d int) (RunReport, error) { return run(nil, d) },
		}
	}
	border := func(name, about string, spec EngineSpec, seconds float64, seed uint64) Scenario {
		run := func(rec *obs.Recorder, domains int) (RunReport, error) {
			res, _, err := RunBorder(BorderRun{
				Spec: spec, Queues: 4, X: 300, Seconds: seconds, Seed: seed, Trace: rec,
				Domains: domains,
			})
			if err != nil {
				return RunReport{}, err
			}
			return res.Report(name), nil
		}
		return Scenario{Name: name, About: about,
			Run:        func() (RunReport, error) { return run(nil, 0) },
			RunTraced:  func(rec *obs.Recorder) (RunReport, error) { return run(rec, 0) },
			RunDomains: func(d int) (RunReport, error) { return run(nil, d) },
		}
	}
	scenarios := []Scenario{
		constant("constant_wirecapb_x300",
			"Fig 9 setup: WireCAP-B-(256,100) at wire rate, heavy handler",
			WireCAPB(256, 100), 50_000),
		constant("constant_dna_x300",
			"Fig 8 setup: DNA (Type-II, per-packet release) under overload",
			DNA, 50_000),
		constant("constant_pfring_x300",
			"Fig 8 setup: PF_RING (Type-I, kernel copy + livelock) under overload",
			PFRing, 30_000),
		border("border_wirecapa_4q",
			"Table 1 setup: WireCAP-A-(256,100,60%) on the bursty border trace",
			WireCAPA(256, 100, 60), 0.5, 11),
		border("border_netmap_4q",
			"Table 1 setup: NETMAP (Type-II, batch release) on the border trace",
			NETMAP, 0.3, 13),
	}
	scenarios = append(scenarios, ChaosScenarios()...)
	scenarios = append(scenarios, AnalyticsScenarios()...)
	return append(scenarios, FleetScenarios()...)
}

// WriteReports runs every CI scenario and writes the reports to w as
// one indented JSON array — the machine-readable counterpart of the
// experiment tables, and the input cmd/ci-gate diffs baselines against.
func WriteReports(w io.Writer) error {
	scenarios := CIScenarios()
	reports := make([]RunReport, 0, len(scenarios))
	for _, sc := range scenarios {
		rep, err := sc.Report()
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}
