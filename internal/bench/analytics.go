package bench

import (
	"repro/internal/analytics"
	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// AnalyticsRun drives the border-router workload into an engine whose
// consumer is the streaming analytics stage (internal/analytics),
// optionally behind the engine's per-chunk batch filter and a
// deterministic fault storm. It models the headline line-rate consumer:
// batch-filter whole chunks, decode survivors zero-copy, feed sketches.
type AnalyticsRun struct {
	Spec   EngineSpec
	Queues int     // default 4
	Scale  float64 // border rate multiplier, default 1.0
	// Seconds is the trace duration (default 0.4).
	Seconds float64
	Seed    uint64
	// Filter, when non-empty, installs a chunk batch filter compiled to
	// the flattened backend (WireCAP kinds only; other engines have no
	// chunk pipeline and reject it).
	Filter string
	// Analytics sizes the stage; the zero value takes the stage defaults.
	Analytics analytics.Config

	// Faults / FaultSeed attach a deterministic fault storm, as in
	// ChaosRun. An empty schedule runs fault-free.
	Faults    faults.Schedule
	FaultSeed uint64

	// Trace attaches a flight recorder to the NIC and the stage.
	Trace *obs.Recorder
	// Domains / Workers: as in ConstantRun — the run is one structural
	// unit in domain 0, so its report is byte-identical for every value.
	Domains int
	Workers int
}

// analyticsHandler adapts the analytics stage onto engines.Handler: one
// decode plus one stage update per delivered packet, on per-queue
// scratch so the steady state allocates nothing.
type analyticsHandler struct {
	stage *analytics.Stage
	cost  vtime.Time
	dec   []packet.Decoded
}

// Cost implements engines.Handler: the declared per-packet budget of
// decode plus sketch updates.
func (h *analyticsHandler) Cost(int, []byte) vtime.Time { return h.cost }

// Handle implements engines.Handler.
//
//wirecap:hotpath
func (h *analyticsHandler) Handle(q int, data []byte, ts vtime.Time, done func()) {
	d := &h.dec[q]
	if err := packet.Decode(data, d); err != nil {
		h.stage.NoteUndecodable()
		done()
		return
	}
	h.stage.Update(q, d, ts)
	done()
}

// RunAnalytics executes the run to completion and returns the result
// with its Analytics report attached.
func RunAnalytics(cfg AnalyticsRun) (Result, error) {
	if cfg.Queues == 0 {
		cfg.Queues = 4
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	if cfg.Seconds == 0 {
		cfg.Seconds = 0.4
	}
	sim, sched := simFor(cfg.Domains, cfg.Workers)
	reg := metrics.NewRegistry()
	var inj *faults.Injector
	if len(cfg.Faults) > 0 {
		inj = faults.NewInjector(sched, cfg.FaultSeed)
		inj.Register(reg)
		inj.SetTrace(cfg.Trace)
		if err := inj.Install(cfg.Faults); err != nil {
			return Result{}, err
		}
	}
	n := nic.New(sched, nic.Config{
		ID: 0, RxQueues: cfg.Queues, RingSize: 1024, Promiscuous: true,
		Metrics: reg, Faults: inj, Trace: cfg.Trace,
	})
	costs := engines.DefaultCosts()
	stage := analytics.New(cfg.Analytics, reg, cfg.Trace)
	h := &analyticsHandler{
		stage: stage,
		cost:  costs.AppBase + analytics.DefaultUpdateCost,
		dec:   make([]packet.Decoded, cfg.Queues),
	}
	var mutate func(*core.Config)
	if cfg.Filter != "" {
		flt, err := bpf.CompileFlat(cfg.Filter, 65535)
		if err != nil {
			return Result{}, err
		}
		mutate = func(c *core.Config) { c.ChunkFilter = flt }
	}
	eng, err := cfg.Spec.BuildWith(sched, n, costs, h, mutate)
	if err != nil {
		return Result{}, err
	}
	src := trace.NewBorder(trace.BorderConfig{
		Queues:   cfg.Queues,
		Duration: vtime.Time(cfg.Seconds * float64(vtime.Second)),
		Scale:    cfg.Scale,
		Seed:     cfg.Seed,
	})
	st := trace.Drive(sched, n, src, nil)
	runSim(sim, sched)
	return Result{
		Spec: cfg.Spec, Sent: st.Sent, Stats: eng.Stats(),
		Metrics: reg, End: sched.Now(),
		Analytics: stage.Report(),
	}, nil
}

// AnalyticsScenarios is the line-rate-consumer regression suite: the
// full fast path (chunk batch filter -> zero-copy decode -> sketch
// updates) under the bursty border workload, clean and under the
// composite fault storm. Every sketch counter, heavy-hitter row, and
// superspreader estimate sits under the ci-gate digest.
func AnalyticsScenarios() []Scenario {
	mk := func(name, about string, cfg AnalyticsRun) Scenario {
		run := func(rec *obs.Recorder, domains int) (RunReport, error) {
			c := cfg
			c.Trace = rec
			c.Domains = domains
			res, err := RunAnalytics(c)
			if err != nil {
				return RunReport{}, err
			}
			return res.Report(name), nil
		}
		return Scenario{Name: name, About: about,
			Run:        func() (RunReport, error) { return run(nil, 0) },
			RunTraced:  func(rec *obs.Recorder) (RunReport, error) { return run(rec, 0) },
			RunDomains: func(d int) (RunReport, error) { return run(nil, d) },
		}
	}
	return []Scenario{
		mk("analytics_border_wirecapa",
			"line-rate consumer: chunk batch filter + streaming analytics on the border trace",
			AnalyticsRun{
				Spec: WireCAPA(128, 64, 60), Queues: 4,
				Seconds: 0.4, Scale: 0.2, Seed: 17,
				Filter: "udp",
				Analytics: analytics.Config{
					FlowCapacity: 512, TopK: 16, Superspreaders: 16,
				},
			}),
		mk("analytics_chaos_storm",
			"streaming analytics under the composite fault storm: digests stay deterministic while drops go through ledgered causes",
			AnalyticsRun{
				Spec: WireCAPA(64, 32, 60), Queues: 4,
				Seconds: 0.3, Scale: 0.2, Seed: 19,
				Filter: "tcp",
				Analytics: analytics.Config{
					FlowCapacity: 256, TopK: 8, Superspreaders: 8,
				},
				Faults:    DegradationSchedule(),
				FaultSeed: 131,
			}),
	}
}
