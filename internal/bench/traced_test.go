package bench

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// traced runs scenario name with a fresh recorder and returns the
// report, the recorder, and both exports.
func traced(t *testing.T, name string) (RunReport, *obs.Recorder, []byte, []byte) {
	t.Helper()
	sc, ok := ScenarioByName(name)
	if !ok {
		t.Fatalf("scenario %s not in CIScenarios", name)
	}
	rec := NewRecorder()
	rep, err := sc.RunTraced(rec)
	if err != nil {
		t.Fatal(err)
	}
	record := rec.Record(name, rep.EndNs)
	var chrome, forensics bytes.Buffer
	if err := record.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	if err := record.WriteForensics(&forensics); err != nil {
		t.Fatal(err)
	}
	return rep, rec, chrome.Bytes(), forensics.Bytes()
}

// TestTracedExportsGolden is the observability golden guard: two
// identically seeded traced runs export byte-identical Chrome JSON and
// forensics text, and attaching the recorder leaves the run's digest
// exactly equal to the untraced run's — the recorder is a pure
// observer, which is what lets ci-gate keep one baseline per scenario.
func TestTracedExportsGolden(t *testing.T) {
	for _, name := range []string{"chaos_queue_hang", "constant_pfring_x300"} {
		name := name
		t.Run(name, func(t *testing.T) {
			repA, _, chromeA, forA := traced(t, name)
			repB, _, chromeB, forB := traced(t, name)
			if !bytes.Equal(chromeA, chromeB) {
				t.Error("Chrome exports differ between identical seeded runs")
			}
			if !bytes.Equal(forA, forB) {
				t.Error("forensics reports differ between identical seeded runs")
			}
			if repA.Digest() != repB.Digest() {
				t.Errorf("traced digests diverged: %s vs %s", repA.Digest(), repB.Digest())
			}
			sc, _ := ScenarioByName(name)
			plain, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			if plain.Digest() != repA.Digest() {
				t.Errorf("tracing changed the digest: untraced %s, traced %s",
					plain.Digest(), repA.Digest())
			}
			if len(chromeA) == 0 || len(forA) == 0 {
				t.Error("empty export")
			}
		})
	}
}

// TestDropLedgerConservation checks the ledger's central invariant on
// every CI scenario: the per-cause totals, summed by class, equal the
// engine's drop counters exactly. Every drop the simulator counts is
// attributed to exactly one typed cause.
func TestDropLedgerConservation(t *testing.T) {
	for _, sc := range CIScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rec := NewRecorder()
			rep, err := sc.RunTraced(rec)
			if err != nil {
				t.Fatal(err)
			}
			tot := rep.Totals
			if rep.Engine == "fleet" {
				// Fleet scenarios account drops in host-level books, not
				// the packet-lifecycle ledger (their per-domain recorders
				// merge inside fleet.Run, which already errors on any
				// conservation miss). Check the flattened books here.
				if tot.Received != tot.Delivered+tot.DeliveryDrops {
					t.Errorf("fleet books: received %d != delivered %d + delivery drops %d",
						tot.Received, tot.Delivered, tot.DeliveryDrops)
				}
				if rep.Sent != tot.Received+tot.CaptureDrops {
					t.Errorf("fleet books: sent %d != received %d + capture drops %d",
						rep.Sent, tot.Received, tot.CaptureDrops)
				}
				return
			}
			capture := rec.DropTotal(obs.DropDescDepletion) + rec.DropTotal(obs.DropBus) +
				rec.DropTotal(obs.DropQueueHang) + rec.DropTotal(obs.DropDescStall)
			delivery := rec.DropTotal(obs.DropDeliveryOverflow) + rec.DropTotal(obs.DropQuarantineBacklog)
			if capture != tot.CaptureDrops {
				t.Errorf("capture ledger = %d, counter = %d", capture, tot.CaptureDrops)
			}
			if delivery != tot.DeliveryDrops {
				t.Errorf("delivery ledger = %d, counter = %d", delivery, tot.DeliveryDrops)
			}
			if c := rec.DropTotal(obs.DropCorrupt); c != tot.CorruptDrops {
				t.Errorf("corrupt ledger = %d, counter = %d", c, tot.CorruptDrops)
			}
			if c := rec.DropTotal(obs.DropReclaim); c != tot.ReclaimDrops {
				t.Errorf("reclaim ledger = %d, counter = %d", c, tot.ReclaimDrops)
			}
		})
	}
}
