package bench

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/nic"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// ExtensionDPDK is the comparison the paper defers to future work
// ("Comparing WireCAP with DPDK (with offloading) will be our future
// research"): WireCAP's chunk-granular, engine-level offloading against a
// DPDK-style framework where the application must steer packets itself,
// one packet at a time, over software rings.
//
// The workload steers a high packet rate at one queue of a 4-queue NIC
// with moderately loaded handlers (x=3): one thread cannot keep up, four
// can. The interesting quantity besides the drop rate is the *hot
// thread's CPU time*: DPDK's application-layer offloading spends donor
// CPU on every steered packet, while WireCAP's capture thread moves whole
// chunks by metadata.
func ExtensionDPDK(opt Options) (Table, error) {
	opt.setDefaults()
	t := Table{
		ID:    "Extension E2",
		Title: "WireCAP vs DPDK offloading (7 Mp/s at one of 4 queues, x=3)",
		Columns: []string{"engine", "drop rate",
			"hot app-thread CPU", "hot capture CPU", "pkts steered/offloaded"},
	}
	const (
		x = 3
		// 7 Mp/s exceeds one x=3 thread (3.3 Mp/s) and also exceeds what
		// a donor thread can re-steer packet by packet (~6 Mp/s at 165 ns
		// of poll+steer per packet) — but not WireCAP's chunk-granular
		// capture thread.
		rate = 7_000_000
	)
	packets := opt.ScalePackets

	type setup struct {
		name  string
		build func(sched *vtime.Scheduler, n *nic.NIC, h engines.Handler) (engines.Engine, func() (vtime.Time, vtime.Time, uint64), error)
	}
	costs := engines.DefaultCosts()
	setups := []setup{
		{"DPDK", func(sched *vtime.Scheduler, n *nic.NIC, h engines.Handler) (engines.Engine, func() (vtime.Time, vtime.Time, uint64), error) {
			e := engines.NewDPDK(sched, n, costs, h, engines.DPDKConfig{})
			return e, func() (vtime.Time, vtime.Time, uint64) { return e.QueueBusy(0), 0, e.Steered(0) }, nil
		}},
		{"DPDK+app-offload", func(sched *vtime.Scheduler, n *nic.NIC, h engines.Handler) (engines.Engine, func() (vtime.Time, vtime.Time, uint64), error) {
			e := engines.NewDPDK(sched, n, costs, h, engines.DPDKConfig{AppOffload: true})
			return e, func() (vtime.Time, vtime.Time, uint64) { return e.QueueBusy(0), 0, e.Steered(0) }, nil
		}},
		{"WireCAP-A-(256,100,60%)", func(sched *vtime.Scheduler, n *nic.NIC, h engines.Handler) (engines.Engine, func() (vtime.Time, vtime.Time, uint64), error) {
			e, err := core.New(sched, n, core.Config{
				M: 256, R: 100, Mode: core.Advanced, ThresholdPct: 60, Costs: costs,
			}, h)
			if err != nil {
				return nil, nil, err
			}
			probe := func() (vtime.Time, vtime.Time, uint64) {
				var off uint64
				for q := 0; q < n.RxQueues(); q++ {
					off += e.QueueStats(q).ChunksOffloaded
				}
				return e.AppBusy(0), e.CaptureBusy(0), off * uint64(256)
			}
			return e, probe, nil
		}},
	}
	for _, su := range setups {
		sched := vtime.NewScheduler()
		n := nic.New(sched, nic.Config{ID: 0, RxQueues: 4, RingSize: 1024, Promiscuous: true})
		h := app.NewPktHandler(x, costs, 4)
		eng, probe, err := su.build(sched, n, h)
		if err != nil {
			return Table{}, err
		}
		src := trace.NewConstantRate(trace.ConstantRateConfig{
			Packets: packets, Queues: 4, SingleQueue: true,
			LineRateBps: rate * 84 * 8, Seed: opt.Seed,
		})
		st := trace.Drive(sched, n, src, nil)
		sched.Run()
		appBusy, capBusy, moved := probe()
		dur := st.Last.Seconds()
		capCPU := "-"
		if capBusy > 0 {
			capCPU = fmt.Sprintf("%.1f%%", 100*capBusy.Seconds()/dur)
		}
		t.Rows = append(t.Rows, []string{
			su.name,
			pct(eng.Stats().DropRate(st.Sent)),
			fmt.Sprintf("%.1f%%", 100*appBusy.Seconds()/dur),
			capCPU,
			fmt.Sprintf("%d", moved),
		})
	}
	return t, nil
}
