package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestFleetTracedObservabilityGolden sweeps every fleet chaos scenario
// through the observability plane: the traced run's digest must equal
// the untraced digest (the journeys, health lanes, and forensics ledger
// are pure observers), and every rendered artifact — journey dump,
// Chrome export, health series — must be byte-identical at 1 and 4 time
// domains. This is the test-suite mirror of ci-gate's fleet-traced
// family.
func TestFleetTracedObservabilityGolden(t *testing.T) {
	for _, sc := range CIScenarios() {
		if !strings.HasPrefix(sc.Name, "fleet_chaos_") {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			plain, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			rep1, rec1, err := sc.TracedRecord(0)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Digest() != rep1.Digest() {
				t.Errorf("tracing changed the digest: untraced %s, traced %s",
					plain.Digest(), rep1.Digest())
			}
			rep4, rec4, err := sc.TracedRecord(4)
			if err != nil {
				t.Fatal(err)
			}
			if rep1.Digest() != rep4.Digest() {
				t.Errorf("digest differs across domains: %s vs %s", rep1.Digest(), rep4.Digest())
			}
			render := func(what string, f func(*bytes.Buffer, obs.Record) error) {
				var b1, b4 bytes.Buffer
				if err := f(&b1, rec1); err != nil {
					t.Fatalf("%s domains=1: %v", what, err)
				}
				if err := f(&b4, rec4); err != nil {
					t.Fatalf("%s domains=4: %v", what, err)
				}
				if !bytes.Equal(b1.Bytes(), b4.Bytes()) {
					t.Errorf("%s differs across domains", what)
				}
			}
			render("journey dump", func(b *bytes.Buffer, r obs.Record) error { return r.WriteJourneys(b) })
			render("chrome export", func(b *bytes.Buffer, r obs.Record) error { return r.WriteChrome(b) })
			render("health series", func(b *bytes.Buffer, r obs.Record) error { return obs.WriteHealth(b, r.Health) })
			if len(rec1.Journeys) == 0 {
				t.Error("fleet traced record carries no journeys")
			}
			if len(rec1.Health) == 0 {
				t.Error("fleet traced record carries no health lanes")
			}
		})
	}
}

// TestFleetKeyMetricsExposeConservationCounters: the flattened fleet
// RunReport's KeyMetrics must carry the fleet conservation counters so
// baselines.json pins them and `wiredump -stats` has them to print.
func TestFleetKeyMetricsExposeConservationCounters(t *testing.T) {
	sc, ok := ScenarioByName("fleet_chaos_host_kill")
	if !ok {
		t.Fatal("fleet_chaos_host_kill not in CIScenarios")
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	km := rep.KeyMetrics()
	for _, name := range []string{"fleet_received", "fleet_host_lost", "fleet_wire_dropped"} {
		if km[name] == 0 {
			t.Errorf("KeyMetrics[%s] = %v, want nonzero under the storm (have: %v)", name, km[name], km)
		}
	}
}
