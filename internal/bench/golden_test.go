package bench

import (
	"bytes"
	"fmt"
	"testing"
)

// digest flattens everything observable about a run into one string, so
// two runs can be compared bit for bit. It deliberately covers every
// counter the experiments report: Sent, per-queue engine stats, and the
// handler's processing record including the delay histogram.
func digest(r Result) string {
	h := r.Handler
	return fmt.Sprintf("sent=%d stats=%+v processed=%d matched=%d bytes=%d txdrop=%d perq=%v delaysum=%d hist=%v fwd=%d",
		r.Sent, r.Stats, h.Processed, h.Matched, h.Bytes, h.TxDropped,
		h.PerQueue, h.DelaySum, h.DelayHist, r.Forwarded)
}

// TestGoldenDeterminism guards the scheduler (and any future rewrite of
// it): the same seed must produce bit-identical results, run to run, for
// both the Fig9-style constant-rate setup and the border workload with
// its flush timers and offloading.
func TestGoldenDeterminism(t *testing.T) {
	constant := func() string {
		res, err := RunConstant(ConstantRun{
			Spec: WireCAPB(256, 100), Packets: 50_000, X: 300, Seed: 7,
		})
		if err != nil {
			t.Fatalf("RunConstant: %v", err)
		}
		return digest(res)
	}
	a, b := constant(), constant()
	if a != b {
		t.Errorf("constant-rate runs diverged:\n  %s\n  %s", a, b)
	}

	border := func() string {
		res, offered, err := RunBorder(BorderRun{
			Spec: WireCAPA(256, 100, 60), Queues: 4, X: 300,
			Seconds: 0.5, Seed: 11,
		})
		if err != nil {
			t.Fatalf("RunBorder: %v", err)
		}
		return digest(res) + fmt.Sprintf(" offered=%v", offered)
	}
	c, d := border(), border()
	if c != d {
		t.Errorf("border runs diverged:\n  %s\n  %s", c, d)
	}
}

// TestGoldenDomainsEquivalence extends the golden guard across the
// parallel executive: the same workload routed through Sim with any
// domain count must produce the bit-identical Result — not just the
// same digest, the same full observable state — as the plain scheduler.
func TestGoldenDomainsEquivalence(t *testing.T) {
	constant := func(domains int) string {
		res, err := RunConstant(ConstantRun{
			Spec: WireCAPB(256, 100), Packets: 50_000, X: 300, Seed: 7,
			Domains: domains,
		})
		if err != nil {
			t.Fatalf("RunConstant(domains=%d): %v", domains, err)
		}
		return digest(res)
	}
	ref := constant(0)
	for _, d := range []int{1, 2, 4} {
		if got := constant(d); got != ref {
			t.Errorf("constant run diverged at domains=%d:\n  %s\n  %s", d, got, ref)
		}
	}

	border := func(domains int) string {
		res, offered, err := RunBorder(BorderRun{
			Spec: WireCAPA(256, 100, 60), Queues: 4, X: 300,
			Seconds: 0.5, Seed: 11, Domains: domains,
		})
		if err != nil {
			t.Fatalf("RunBorder(domains=%d): %v", domains, err)
		}
		return digest(res) + fmt.Sprintf(" offered=%v", offered)
	}
	bref := border(0)
	for _, d := range []int{3} {
		if got := border(d); got != bref {
			t.Errorf("border run diverged at domains=%d:\n  %s\n  %s", d, got, bref)
		}
	}
}

// TestRunReportDeterminism extends the golden guard to the exported
// RunReport: two identically seeded runs must serialize to byte-equal
// JSON (metrics snapshot included) and therefore equal digests. This is
// the property cmd/ci-gate's baseline digests rely on.
func TestRunReportDeterminism(t *testing.T) {
	for _, sc := range CIScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a, err := sc.Report()
			if err != nil {
				t.Fatal(err)
			}
			b, err := sc.Report()
			if err != nil {
				t.Fatal(err)
			}
			aj, err := a.JSON()
			if err != nil {
				t.Fatal(err)
			}
			bj, err := b.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(aj, bj) {
				t.Errorf("reports diverged between identical runs:\n%s\n---\n%s", aj, bj)
			}
			if da, db := a.Digest(), b.Digest(); da != db {
				t.Errorf("digests diverged: %s vs %s", da, db)
			}
			if len(a.Metrics.Series) == 0 {
				t.Error("report carries no metric series; registry wiring is broken")
			}
		})
	}
}

// TestRunReportDigestSensitivity proves the digest actually covers the
// observable state: perturbing the seed (different arrival jitter) must
// change it. A digest blind to the run would let regressions through
// the gate.
func TestRunReportDigestSensitivity(t *testing.T) {
	run := func(seed uint64) string {
		res, _, err := RunBorder(BorderRun{
			Spec: WireCAPB(256, 100), Queues: 2, X: 300,
			Seconds: 0.1, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Report("sensitivity").Digest()
	}
	if run(7) == run(8) {
		t.Error("digest unchanged across different seeds; it is not covering the run state")
	}
}
