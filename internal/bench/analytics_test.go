package bench

import (
	"testing"

	"repro/internal/obs"
)

// TestAnalyticsScenarioDeterminism: each analytics scenario renders a
// byte-identical report when re-run, when traced, and under the
// parallel executive with 1, 2, and 4 time domains — the equivalence
// property cmd/ci-gate's -domains check enforces, extended to the
// sketch contents themselves.
func TestAnalyticsScenarioDeterminism(t *testing.T) {
	for _, sc := range AnalyticsScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			base, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			if base.Analytics == nil {
				t.Fatal("analytics scenario produced no analytics report")
			}
			if base.Analytics.Updates == 0 {
				t.Fatal("stage saw no packets")
			}
			digest := base.Digest()
			again, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			if again.Digest() != digest {
				t.Fatalf("re-run digest %s != %s", again.Digest(), digest)
			}
			traced, err := sc.RunTraced(NewRecorder())
			if err != nil {
				t.Fatal(err)
			}
			if traced.Digest() != digest {
				t.Fatalf("traced digest %s != untraced %s", traced.Digest(), digest)
			}
			for _, d := range []int{1, 2, 4} {
				rep, err := sc.RunDomains(d)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Digest() != digest {
					t.Fatalf("domains=%d digest %s != %s", d, rep.Digest(), digest)
				}
			}
		})
	}
}

// TestAnalyticsChaosLedgeredDrops: under the composite storm, every
// packet the stage did NOT see is accounted for by an explicit cause —
// a drop class or the chunk filter — never silently lost, and the
// filtered count shows the batch filter actually ran.
func TestAnalyticsChaosLedgeredDrops(t *testing.T) {
	sc, ok := ScenarioByName("analytics_chaos_storm")
	if !ok {
		t.Fatal("analytics_chaos_storm not registered")
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	tot := rep.Totals
	if tot.TotalDrops() == 0 {
		t.Fatal("composite storm produced no drops")
	}
	filtered := rep.Metrics.CounterTotal("wirecap_chunk_filtered_total")
	if filtered == 0 {
		t.Fatal("chunk filter rejected nothing on the border trace")
	}
	// Stage updates + undecodable == delivered; received decomposes into
	// delivered + filtered (+ nothing else: delivery/corrupt/reclaim
	// drops happen before receive accounting or are counted in Received).
	a := rep.Analytics
	if a.Updates+a.Undecodable != tot.Delivered {
		t.Fatalf("stage saw %d+%d, engine delivered %d",
			a.Updates, a.Undecodable, tot.Delivered)
	}
	if tot.Received != tot.Delivered+filtered+tot.DeliveryDrops+tot.CorruptDrops+tot.ReclaimDrops {
		t.Fatalf("unledgered packets: received %d, delivered %d, filtered %d, delivery %d, corrupt %d, reclaim %d",
			tot.Received, tot.Delivered, filtered,
			tot.DeliveryDrops, tot.CorruptDrops, tot.ReclaimDrops)
	}
	if tot.Received+tot.CaptureDrops != rep.Sent {
		t.Fatalf("wire conservation: received %d + capture drops %d != sent %d",
			tot.Received, tot.CaptureDrops, rep.Sent)
	}
}

// TestAnalyticsScenariosRegistered: the gate suite contains both
// analytics scenarios and their traced variant is non-nil.
func TestAnalyticsScenariosRegistered(t *testing.T) {
	for _, name := range []string{"analytics_border_wirecapa", "analytics_chaos_storm"} {
		sc, ok := ScenarioByName(name)
		if !ok {
			t.Fatalf("%s missing from CIScenarios", name)
		}
		if sc.RunTraced == nil || sc.RunDomains == nil {
			t.Fatalf("%s lacks traced/domains variants", name)
		}
	}
	var _ func(*obs.Recorder) (RunReport, error) // keep obs import honest
}
