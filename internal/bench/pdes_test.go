package bench

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/faults"
	"repro/internal/vtime"
)

// fleetCfg is the shared base fleet every placement-equivalence test
// perturbs: six hosts so domain counts 1/2/3/6 all divide the work
// differently, offered under per-queue capacity so the steady state is
// clean, and small enough to run many placements per test.
func fleetCfg() FleetRun {
	return FleetRun{
		Spec: WireCAPA(64, 32, 60), Hosts: 6, Queues: 2, X: 300,
		Packets: 2_000, PacketsPerSec: 60_000, Seed: 41,
		MilestoneEvery: 250,
	}
}

// TestFleetPlacementEquivalence pins the tentpole property on the fleet
// workload, where cross-domain mailbox traffic is real: the FleetReport
// — per-host reports, collector counters, and the order-sensitive
// ledger checksum — is byte-identical for every execution domain and
// worker count.
func TestFleetPlacementEquivalence(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	run := func(domains, workers int) ([]byte, string) {
		cfg := fleetCfg()
		cfg.Domains = domains
		cfg.Workers = workers
		res, err := RunFleet("fleet_equiv", cfg)
		if err != nil {
			t.Fatalf("RunFleet(domains=%d): %v", domains, err)
		}
		b, err := json.Marshal(res.Report)
		if err != nil {
			t.Fatal(err)
		}
		return b, res.Report.Digest()
	}
	refJSON, refDigest := run(1, 1)
	for _, c := range []struct{ domains, workers int }{
		{1, 4}, {2, 1}, {2, 4}, {3, 4}, {6, 1}, {6, 4},
	} {
		gotJSON, gotDigest := run(c.domains, c.workers)
		if gotDigest != refDigest {
			t.Errorf("domains=%d workers=%d digest %s != sequential %s",
				c.domains, c.workers, gotDigest, refDigest)
		}
		if !bytes.Equal(gotJSON, refJSON) {
			t.Errorf("domains=%d workers=%d report JSON diverged from sequential", c.domains, c.workers)
		}
	}
}

// TestFleetTracedMergeEquivalence extends placement equivalence to the
// merged flight-recorder record: per-host recorders tagged by host and
// merged canonically must export byte-identical JSON for every
// placement, and tracing must not perturb the report digest.
func TestFleetTracedMergeEquivalence(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	run := func(domains int, traced bool) (string, []byte) {
		cfg := fleetCfg()
		cfg.Domains = domains
		cfg.Traced = traced
		res, err := RunFleet("fleet_traced", cfg)
		if err != nil {
			t.Fatal(err)
		}
		var rec []byte
		if traced {
			rec, err = json.Marshal(res.Record)
			if err != nil {
				t.Fatal(err)
			}
		}
		return res.Report.Digest(), rec
	}
	untraced, _ := run(1, false)
	seqDigest, seqRec := run(1, true)
	if seqDigest != untraced {
		t.Errorf("tracing perturbed the fleet digest: %s vs %s", seqDigest, untraced)
	}
	if len(seqRec) == 0 {
		t.Fatal("traced fleet produced an empty merged record")
	}
	for _, domains := range []int{2, 3, 6} {
		gotDigest, gotRec := run(domains, true)
		if gotDigest != seqDigest {
			t.Errorf("domains=%d traced digest %s != sequential %s", domains, gotDigest, seqDigest)
		}
		if !bytes.Equal(gotRec, seqRec) {
			t.Errorf("domains=%d merged record JSON diverged from sequential", domains)
		}
	}
}

// TestFleetChaosEquivalence runs the fleet under a fault storm: every
// host takes a queue hang plus a consumer stall, recovery actions
// travel the mailbox fabric to the collector, and the whole thing must
// still be placement-independent.
func TestFleetChaosEquivalence(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	run := func(domains int) FleetReport {
		cfg := fleetCfg()
		cfg.Domains = domains
		cfg.Packets = 3_000
		cfg.FaultSeed = 97
		cfg.Faults = faults.Schedule{
			{At: 5 * vtime.Millisecond, Kind: faults.QueueHang, Queue: 1},
			{At: 8 * vtime.Millisecond, Dur: 20 * vtime.Millisecond, Kind: faults.HandlerStall, Queue: 0},
		}
		res, err := RunFleet("fleet_chaos", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report
	}
	seq := run(1)
	if seq.Actions == 0 {
		t.Fatal("chaos fleet reported no recovery actions; the cross-domain action path is dead")
	}
	for _, domains := range []int{2, 4, 6} {
		got := run(domains)
		if got.Digest() != seq.Digest() {
			t.Errorf("domains=%d chaos digest %s != sequential %s", domains, got.Digest(), seq.Digest())
		}
	}
}

// TestFleetLedgerConservation checks the collector's books against the
// hosts' ground truth for several placements: every K-th processed
// packet sends exactly one milestone, all mailboxes drain before Run
// returns, and the collector's per-host high-water mark can never
// exceed what the host actually processed.
func TestFleetLedgerConservation(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	for _, domains := range []int{1, 3, 6} {
		cfg := fleetCfg()
		cfg.Domains = domains
		res, err := RunFleet("fleet_ledger", cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep := res.Report
		var want uint64
		for _, h := range rep.PerHost {
			want += h.Handler.Processed / cfg.MilestoneEvery
		}
		if rep.Milestones != want {
			t.Errorf("domains=%d: collector saw %d milestones, hosts emitted %d",
				domains, rep.Milestones, want)
		}
		if rep.Milestones == 0 {
			t.Errorf("domains=%d: no milestones delivered; the mailbox fabric is dead", domains)
		}
		var processed uint64
		for _, h := range rep.PerHost {
			processed += h.Handler.Processed
		}
		if rep.Processed != processed {
			t.Errorf("domains=%d: aggregate processed %d != per-host sum %d",
				domains, rep.Processed, processed)
		}
	}
}

// TestScenarioDomainsEquivalence replays every CI scenario — the five
// steady-state ones and the three chaos storms — through the parallel
// executive and requires the digest to match the plain sequential run
// exactly. A single-host scenario occupies one domain, so this pins
// that routing a run through Sim is observationally invisible, the
// contract cmd/ci-gate's -domains check enforces in CI.
func TestScenarioDomainsEquivalence(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	for i, sc := range CIScenarios() {
		sc := sc
		domains := []int{2, 3, 5}[i%3]
		t.Run(sc.Name, func(t *testing.T) {
			ref, err := sc.Report()
			if err != nil {
				t.Fatal(err)
			}
			got, err := sc.RunDomains(domains)
			if err != nil {
				t.Fatal(err)
			}
			refJSON, err := ref.JSON()
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := got.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refJSON, gotJSON) {
				t.Errorf("domains=%d report diverged from sequential run", domains)
			}
			if ref.Digest() != got.Digest() {
				t.Errorf("domains=%d digest %s != sequential %s", domains, got.Digest(), ref.Digest())
			}
		})
	}
}

// TestFleetDigestSensitivity proves the fleet digest covers the run:
// perturbing the offered rate (different pacing, different delay
// distribution), the host count, or the milestone cadence must change
// it. (The traffic seed alone only renames the constant-rate flows —
// a lossless paced run is invariant to it by design, which is why the
// single-run sensitivity test uses the bursty border workload.)
func TestFleetDigestSensitivity(t *testing.T) {
	run := func(mutate func(*FleetRun)) string {
		cfg := fleetCfg()
		cfg.Packets = 1_000
		mutate(&cfg)
		res, err := RunFleet("fleet_sens", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.Digest()
	}
	base := run(func(*FleetRun) {})
	if run(func(c *FleetRun) { c.PacketsPerSec = 45_000 }) == base {
		t.Error("fleet digest unchanged across offered rates")
	}
	if run(func(c *FleetRun) { c.Hosts = 5 }) == base {
		t.Error("fleet digest unchanged across host counts")
	}
	if run(func(c *FleetRun) { c.MilestoneEvery = 125 }) == base {
		t.Error("fleet digest unchanged across milestone cadence")
	}
}
