package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/app"
	"repro/internal/engines"
	"repro/internal/nic"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Options scales the experiments. Scale 1.0 and PMax 1e7 replicate the
// paper's sizes; smaller values trade fidelity for runtime.
type Options struct {
	// Scale compresses the border-router trace duration (Figure 3,
	// Table 1, Figures 11-13): 1.0 is the paper's 32 s at the paper's
	// rates; smaller values shorten the trace without thinning the
	// rates. Default 1.0.
	Scale float64
	// PMax caps the constant-rate sweep (Figures 8-10). Default 1e7.
	PMax uint64
	// ScalePackets is the per-NIC packet count for Figure 14 (the paper
	// sends 1e9; default here 2e6, which reaches steady state).
	ScalePackets uint64
	// Seed drives every workload.
	Seed uint64
	// CSV renders results as CSV instead of aligned text.
	CSV bool
}

func (o *Options) setDefaults() {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.PMax == 0 {
		o.PMax = 10_000_000
	}
	if o.ScalePackets == 0 {
		o.ScalePackets = 2_000_000
	}
}

// Table is a rendered experiment result: the rows the paper's figure or
// table reports.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// WriteCSV renders the table as CSV (one header row, then data rows),
// for plotting the figures with external tools.
func (t Table) WriteCSV(w io.Writer) error {
	quote := func(cells []string) string {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		return strings.Join(out, ",")
	}
	if _, err := fmt.Fprintf(w, "# %s: %s\n%s\n", t.ID, t.Title, quote(t.Columns)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := io.WriteString(w, quote(row)+"\n"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Write renders the table as aligned text.
func (t Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for i := range t.Columns {
		t.Columns[i] = strings.Repeat("-", widths[i])
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// ratio divides two counters, mapping the nothing-offered case to 0
// instead of NaN (a run whose source emitted no packets has no drop
// rate, not an undefined one).
func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Fig3 reproduces Figure 3 (and Experiment 1): the per-queue load time
// series of the border-router trace captured with DNA and profiled in
// 10 ms bins. The table reports summary statistics; Series returns the
// raw bins for plotting.
func Fig3(opt Options) (Table, *app.QueueProfiler, error) {
	opt.setDefaults()
	sched := vtime.NewScheduler()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: 6, RingSize: 1024, Promiscuous: true})
	costs := engines.DefaultCosts()
	prof := app.NewQueueProfiler(6)
	engines.NewDNA(sched, n, costs, prof)
	dur := vtime.Time(32 * opt.Scale * float64(vtime.Second))
	src := trace.NewBorder(trace.BorderConfig{Queues: 6, Duration: dur, Seed: opt.Seed})
	st := trace.Drive(sched, n, src, nil)
	sched.Run()

	t := Table{
		ID:      "Figure 3",
		Title:   "Load imbalance: per-queue traffic, 10 ms bins (DNA, queue_profiler)",
		Columns: []string{"queue", "packets", "mean p/s", "peak pkts/10ms"},
	}
	seconds := dur.Seconds()
	for q := 0; q < 6; q++ {
		total := prof.Total(q)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", q),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%.0f", float64(total)/seconds),
			fmt.Sprintf("%d", prof.Peak(q)),
		})
	}
	t.Rows = append(t.Rows, []string{"total", fmt.Sprintf("%d", st.Sent), "", ""})
	return t, prof, nil
}

// Table1 reproduces Table 1: capture vs delivery drop rates of NETMAP,
// DNA, and PF_RING on the border trace at x=300, for the hot queue (0)
// and the bursty queue (3).
func Table1(opt Options) (Table, error) {
	opt.setDefaults()
	specs := []EngineSpec{NETMAP, DNA, PFRing}
	t := Table{
		ID:    "Table 1",
		Title: "Packet drop rates (border trace, x=300, ring 1024, pf_ring 10240)",
		Columns: []string{"engine",
			"q0 capture", "q0 delivery", "q3 capture", "q3 delivery"},
	}
	t.Rows = make([][]string, len(specs))
	err := forEach(len(specs), func(i int) error {
		spec := specs[i]
		res, offered, err := RunBorder(BorderRun{Spec: spec, Queues: 6, X: 300, Scale: opt.Scale, Seed: opt.Seed})
		if err != nil {
			return err
		}
		t.Rows[i] = []string{
			spec.Name(),
			pct(res.CaptureDropRate(0, offered[0])),
			pct(res.DeliveryDropRate(0, offered[0])),
			pct(res.CaptureDropRate(3, offered[3])),
			pct(res.DeliveryDropRate(3, offered[3])),
		}
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	return t, nil
}

// pSweep returns the burst lengths for Figures 8-10, capped at PMax.
func pSweep(pmax uint64) []uint64 {
	all := []uint64{1_000, 10_000, 100_000, 1_000_000, 10_000_000}
	var out []uint64
	for _, p := range all {
		if p <= pmax {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = []uint64{pmax}
	}
	return out
}

func burstTable(id, title string, specs []EngineSpec, x int, opt Options) (Table, error) {
	ps := pSweep(opt.PMax)
	t := Table{ID: id, Title: title, Columns: []string{"engine"}}
	for _, p := range ps {
		t.Columns = append(t.Columns, fmt.Sprintf("P=%d", p))
	}
	for _, spec := range specs {
		row := []string{spec.Name()}
		row = append(row, make([]string, len(ps))...)
		t.Rows = append(t.Rows, row)
	}
	// Every (engine, P) cell is an independent simulation: run them on
	// all cores.
	err := forEach(len(specs)*len(ps), func(i int) error {
		si, pi := i/len(ps), i%len(ps)
		res, err := RunConstant(ConstantRun{Spec: specs[si], Packets: ps[pi], X: x, Seed: opt.Seed})
		if err != nil {
			return err
		}
		t.Rows[si][1+pi] = pct(res.DropRate())
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	return t, nil
}

// Fig8 reproduces Figure 8: basic-mode capture at wire rate with no
// processing load (x=0).
func Fig8(opt Options) (Table, error) {
	opt.setDefaults()
	specs := []EngineSpec{
		DNA, PFRing, NETMAP,
		WireCAPB(64, 100), WireCAPB(128, 100), WireCAPB(256, 100), WireCAPB(256, 500),
	}
	return burstTable("Figure 8", "Basic mode, x=0: drop rate vs burst length P (64B @ wire rate)",
		specs, 0, opt)
}

// Fig9 reproduces Figure 9: basic-mode capture under a heavy processing
// load (x=300).
func Fig9(opt Options) (Table, error) {
	opt.setDefaults()
	specs := []EngineSpec{
		DNA, PFRing, NETMAP, WireCAPB(256, 100), WireCAPB(256, 500),
	}
	return burstTable("Figure 9", "Basic mode, x=300: drop rate vs burst length P (64B @ wire rate)",
		specs, 300, opt)
}

// Fig10 reproduces Figure 10: with R*M fixed, the individual R and M do
// not matter.
func Fig10(opt Options) (Table, error) {
	opt.setDefaults()
	specs := []EngineSpec{WireCAPB(64, 400), WireCAPB(128, 200), WireCAPB(256, 100)}
	return burstTable("Figure 10", "Basic mode, x=300: R and M varied, R*M fixed at 25,600",
		specs, 300, opt)
}

// queueSweepTable runs border-trace experiments across 4/5/6 queues.
func queueSweepTable(id, title string, specs []EngineSpec, opt Options, forward bool) (Table, error) {
	queues := []int{4, 5, 6}
	t := Table{ID: id, Title: title, Columns: []string{"engine", "4 queues", "5 queues", "6 queues"}}
	for _, spec := range specs {
		t.Rows = append(t.Rows, []string{spec.Name(), "", "", ""})
	}
	err := forEach(len(specs)*len(queues), func(i int) error {
		si, qi := i/len(queues), i%len(queues)
		res, _, err := RunBorder(BorderRun{
			Spec: specs[si], Queues: queues[qi], X: 300,
			Scale: opt.Scale, Seed: opt.Seed, Forward: forward,
		})
		if err != nil {
			return err
		}
		t.Rows[si][1+qi] = pct(res.DropRate())
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	return t, nil
}

// Fig11 reproduces Figure 11: advanced mode vs basic mode vs the
// baselines on the border trace across 4-6 queues.
func Fig11(opt Options) (Table, error) {
	opt.setDefaults()
	specs := []EngineSpec{
		PFRing, DNA, NETMAP,
		WireCAPB(256, 100), WireCAPB(256, 500),
		WireCAPA(256, 100, 60), WireCAPA(256, 500, 60),
	}
	return queueSweepTable("Figure 11",
		"Advanced mode (border trace, x=300): overall drop rate", specs, opt, false)
}

// Fig12 reproduces Figure 12: the offloading threshold sweep.
func Fig12(opt Options) (Table, error) {
	opt.setDefaults()
	specs := []EngineSpec{
		WireCAPA(256, 100, 60), WireCAPA(256, 100, 70),
		WireCAPA(256, 100, 80), WireCAPA(256, 100, 90),
	}
	return queueSweepTable("Figure 12",
		"Advanced mode threshold sweep (border trace, x=300)", specs, opt, false)
}

// Fig13 reproduces Figure 13: the forwarding middlebox. NETMAP is absent
// exactly as in the paper (its sync cannot run per queue).
func Fig13(opt Options) (Table, error) {
	opt.setDefaults()
	specs := []EngineSpec{
		PFRing, DNA,
		WireCAPB(256, 100), WireCAPB(256, 500),
		WireCAPA(256, 100, 60), WireCAPA(256, 500, 60),
	}
	return queueSweepTable("Figure 13",
		"Packet forwarding (border trace, x=300): end-to-end drop rate", specs, opt, true)
}

// Fig14 reproduces Figure 14: two NICs at wire rate on a shared bus,
// 64-byte and 100-byte frames, 1-6 queues per NIC, forwarding.
func Fig14(opt Options) (Table, error) {
	opt.setDefaults()
	specs := []EngineSpec{DNA, WireCAPA(256, 100, 60), WireCAPA(256, 500, 60)}
	frames := []struct {
		label string
		bytes int
	}{{"64B", 60}, {"100B", 96}}
	t := Table{ID: "Figure 14", Title: "Scalability: 2 NICs @ wire rate, shared bus, forwarding",
		Columns: []string{"engine@frame", "q/NIC=1", "q/NIC=2", "q/NIC=3", "q/NIC=4", "q/NIC=5", "q/NIC=6"}}
	for _, spec := range specs {
		for _, fr := range frames {
			row := []string{spec.Name() + "@" + fr.label}
			row = append(row, make([]string, 6)...)
			t.Rows = append(t.Rows, row)
		}
	}
	nf := len(frames)
	err := forEach(len(specs)*nf*6, func(i int) error {
		si := i / (nf * 6)
		fi := (i / 6) % nf
		q := i%6 + 1
		rate, err := RunScalability(ScalabilityRun{
			Spec: specs[si], QueuesPerNIC: q, FrameLen: frames[fi].bytes,
			Packets: opt.ScalePackets, Seed: opt.Seed,
		})
		if err != nil {
			return err
		}
		t.Rows[si*nf+fi][q] = pct(rate)
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	return t, nil
}

// All runs every experiment in paper order and writes the tables to w.
func All(opt Options, w io.Writer) error {
	type exp struct {
		name string
		run  func(Options) (Table, error)
	}
	fig3 := func(o Options) (Table, error) {
		t, _, err := Fig3(o)
		return t, err
	}
	for _, e := range []exp{
		{"fig3", fig3}, {"table1", Table1},
		{"fig8", Fig8}, {"fig9", Fig9}, {"fig10", Fig10},
		{"fig11", Fig11}, {"fig12", Fig12}, {"fig13", Fig13}, {"fig14", Fig14},
	} {
		t, err := e.run(opt)
		if err != nil {
			return fmt.Errorf("bench: %s: %w", e.name, err)
		}
		if err := opt.render(t, w); err != nil {
			return err
		}
	}
	return nil
}

// ByName runs a single experiment by its short name ("fig3" ... "fig14",
// "table1").
func ByName(name string, opt Options, w io.Writer) error {
	switch name {
	case "fig3":
		t, _, err := Fig3(opt)
		if err != nil {
			return err
		}
		return opt.render(t, w)
	case "table1":
		return runAndWrite(Table1, opt, w)
	case "fig8":
		return runAndWrite(Fig8, opt, w)
	case "fig9":
		return runAndWrite(Fig9, opt, w)
	case "fig10":
		return runAndWrite(Fig10, opt, w)
	case "fig11":
		return runAndWrite(Fig11, opt, w)
	case "fig12":
		return runAndWrite(Fig12, opt, w)
	case "fig13":
		return runAndWrite(Fig13, opt, w)
	case "fig14":
		return runAndWrite(Fig14, opt, w)
	case "ablations":
		return Ablations(opt, w)
	case "chaos":
		return Chaos(opt, w)
	case "fleet":
		return Fleet(opt, w)
	case "all":
		if err := All(opt, w); err != nil {
			return err
		}
		return Ablations(opt, w)
	default:
		return fmt.Errorf("bench: unknown experiment %q", name)
	}
}

func runAndWrite(f func(Options) (Table, error), opt Options, w io.Writer) error {
	t, err := f(opt)
	if err != nil {
		return err
	}
	return opt.render(t, w)
}

// render writes a table in the configured format.
func (o Options) render(t Table, w io.Writer) error {
	if o.CSV {
		return t.WriteCSV(w)
	}
	return t.Write(w)
}
