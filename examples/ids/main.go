// IDS: a snort-like intrusion detection monitor — the heavy-load
// application class the paper's x=300 pkt_handler emulates — rebuilt on
// the line-rate consumer path. The engine batch-filters whole chunks
// down to IP traffic before anything reaches the callback (the flattened
// per-chunk BPF backend), each surviving packet runs a rule set of
// flattened filters, and a streaming analytics stage tracks
// superspreaders so port scans surface even when no single rule fires.
// The per-packet inspection cost is declared so the capture engine sees
// a realistic ~39 kp/s consumer, and WireCAP's advanced mode keeps the
// monitor lossless across load imbalance where basic mode drops packets
// (and therefore misses alerts).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analytics"
	"repro/internal/packet"
	"repro/internal/vtime"
	"repro/wirecap"
)

// rule is one detection signature: a compiled BPF filter plus a name.
type rule struct {
	name   string
	filter *wirecap.Filter
	hits   uint64
}

func newRules() []*rule {
	specs := []struct{ name, expr string }{
		{"dns-from-outside", "udp and dst port 53 and not src net 131.225"},
		{"telnet", "tcp port 23"},
		{"lab-udp", "udp and net 131.225.2"},
		{"syn-segments", "tcp[13] & 2 != 0"}, // arithmetic filter: SYN bit
		{"low-ttl", "ip[8] < 5"},
		{"web", "tcp and (port 80 or port 443)"},
	}
	var rules []*rule
	for _, s := range specs {
		f, err := wirecap.CompileFilter(s.expr)
		if err != nil {
			log.Fatalf("rule %s: %v", s.name, err)
		}
		rules = append(rules, &rule{name: s.name, filter: f})
	}
	return rules
}

// run replays the border-router workload through the IDS and reports
// drops, alert counts, and the analytics stage's scan report.
func run(advanced bool) (st wirecap.Stats, offered uint64, rules []*rule, rep *analytics.Report) {
	sim := wirecap.NewSim()
	nic := sim.NewNIC(wirecap.NICConfig{Queues: 6})
	eng, err := sim.NewEngine(nic, wirecap.Options{
		M: 256, R: 100, Advanced: advanced,
		// The rule set only inspects IP traffic, so reject everything
		// else chunk-at-a-time before it costs a callback.
		BatchFilter: "ip",
	})
	if err != nil {
		log.Fatal(err)
	}
	rules = newRules()
	stage := analytics.New(analytics.Config{Superspreaders: 16}, nil, nil)
	for q := 0; q < nic.Queues(); q++ {
		queue := q
		h := eng.Queue(q)
		// Declare the snort-like inspection cost: ~25.7 us/packet, the
		// paper's x=300 calibration point (38,844 p/s per core).
		h.SetProcessingCost(25744 * time.Nanosecond)
		var dec packet.Decoded
		h.Loop(func(p *wirecap.Packet) {
			for _, r := range rules {
				if r.filter.Match(p.Data) {
					r.hits++
				}
			}
			if packet.Decode(p.Data, &dec) == nil {
				stage.Update(queue, &dec, vtime.Time(p.Timestamp))
			}
		})
	}
	traffic := sim.ReplayBorder(nic, wirecap.BorderOptions{Seconds: 3, Seed: 7})
	sim.Run()
	return eng.Stats(), traffic.Sent(), rules, stage.Report()
}

func report(st wirecap.Stats, offered uint64, rules []*rule, rep *analytics.Report) {
	fmt.Printf("offered %d, dropped %d (%.1f%%), batch-filtered %d non-IP\n",
		offered, st.CaptureDrops, 100*float64(st.CaptureDrops)/float64(offered),
		st.BatchFiltered)
	for _, r := range rules {
		fmt.Printf("  %-18s %8d\n", r.name, r.hits)
	}
	fmt.Println("  scan candidates (distinct destinations per source):")
	for i, sp := range rep.Superspreaders {
		if i >= 3 {
			break
		}
		fmt.Printf("    %-18s ~%d destinations\n", sp.Src, sp.Estimate)
	}
}

func main() {
	fmt.Println("=== basic mode (no offloading) — alerts below are incomplete ===")
	report(run(false))

	fmt.Println("\n=== advanced mode (buddy-group offloading) ===")
	report(run(true))
}
