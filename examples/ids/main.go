// IDS: a snort-like multi-rule intrusion detection monitor — the heavy-
// load application class the paper's x=300 pkt_handler emulates. Each
// captured packet is checked against a rule set of compiled BPF filters;
// the per-packet inspection cost is declared so the capture engine sees a
// realistic ~39 kp/s consumer, and WireCAP's advanced mode keeps the
// monitor lossless across load imbalance where basic mode drops packets
// (and therefore misses alerts).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/wirecap"
)

// rule is one detection signature: a compiled BPF filter plus a name.
type rule struct {
	name   string
	filter *wirecap.Filter
	hits   uint64
}

func newRules() []*rule {
	specs := []struct{ name, expr string }{
		{"dns-from-outside", "udp and dst port 53 and not src net 131.225"},
		{"telnet", "tcp port 23"},
		{"lab-udp", "udp and net 131.225.2"},
		{"syn-segments", "tcp[13] & 2 != 0"}, // arithmetic filter: SYN bit
		{"low-ttl", "ip[8] < 5"},
		{"web", "tcp and (port 80 or port 443)"},
	}
	var rules []*rule
	for _, s := range specs {
		f, err := wirecap.CompileFilter(s.expr)
		if err != nil {
			log.Fatalf("rule %s: %v", s.name, err)
		}
		rules = append(rules, &rule{name: s.name, filter: f})
	}
	return rules
}

// run replays the border-router workload through the IDS and reports
// drops and alert counts.
func run(advanced bool) (drops, offered uint64, rules []*rule) {
	sim := wirecap.NewSim()
	nic := sim.NewNIC(wirecap.NICConfig{Queues: 6})
	eng, err := sim.NewEngine(nic, wirecap.Options{M: 256, R: 100, Advanced: advanced})
	if err != nil {
		log.Fatal(err)
	}
	rules = newRules()
	for q := 0; q < nic.Queues(); q++ {
		h := eng.Queue(q)
		// Declare the snort-like inspection cost: ~25.7 us/packet, the
		// paper's x=300 calibration point (38,844 p/s per core).
		h.SetProcessingCost(25744 * time.Nanosecond)
		h.Loop(func(p *wirecap.Packet) {
			for _, r := range rules {
				if r.filter.Match(p.Data) {
					r.hits++
				}
			}
		})
	}
	traffic := sim.ReplayBorder(nic, wirecap.BorderOptions{Seconds: 3, Seed: 7})
	sim.Run()
	return eng.Stats().CaptureDrops, traffic.Sent(), rules
}

func main() {
	fmt.Println("=== basic mode (no offloading) ===")
	drops, offered, basicRules := run(false)
	fmt.Printf("offered %d, dropped %d (%.1f%%) — alerts below are incomplete\n",
		offered, drops, 100*float64(drops)/float64(offered))
	for _, r := range basicRules {
		fmt.Printf("  %-18s %8d\n", r.name, r.hits)
	}

	fmt.Println("\n=== advanced mode (buddy-group offloading) ===")
	drops, offered, advRules := run(true)
	fmt.Printf("offered %d, dropped %d (%.1f%%)\n",
		offered, drops, 100*float64(drops)/float64(offered))
	for _, r := range advRules {
		fmt.Printf("  %-18s %8d  (%s)\n", r.name, r.hits, r.filter)
	}
}
