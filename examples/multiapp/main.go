// Multiapp: two independent applications sharing one NIC, each owning two
// receive queues, with buddy groups keeping offloading inside each
// application (paper §3.2.1, Figure 5). Application 1's queues are
// overloaded and offload between themselves; application 2's queues stay
// untouched — traffic belonging to one application is never delivered to
// the other, which is the whole point of the buddy-group concept.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/wirecap"
)

func main() {
	sim := wirecap.NewSim()
	nic := sim.NewNIC(wirecap.NICConfig{Queues: 4})

	// Queues {0,1} belong to application 1, queues {2,3} to application
	// 2. Offloading never crosses the group boundary.
	eng, err := sim.NewEngine(nic, wirecap.Options{
		M: 256, R: 100,
		Advanced:    true,
		BuddyGroups: [][]int{{0, 1}, {2, 3}},
	})
	if err != nil {
		log.Fatal(err)
	}

	perQueue := make([]uint64, 4)
	appOf := []string{"app1", "app1", "app2", "app2"}
	for q := 0; q < 4; q++ {
		q := q
		h := eng.Queue(q)
		// Application 1 is a heavy analyzer (the x=300 class);
		// application 2 is a light counter.
		if q < 2 {
			h.SetProcessingCost(25744 * time.Nanosecond)
		}
		h.Loop(func(p *wirecap.Packet) { perQueue[q]++ })
	}

	// Flood queue 0 far beyond one analyzer thread's 38.8 kp/s capacity.
	sim.SendRate(nic, wirecap.RateOptions{
		Packets:       150_000,
		PacketsPerSec: 70_000,
		SingleQueue:   true,
	})
	sim.Run()

	st := eng.Stats()
	fmt.Printf("captured %d packets, capture drops %d\n\n", st.Received, st.CaptureDrops)
	for q := 0; q < 4; q++ {
		fmt.Printf("queue %d (%s): processed %d packets\n", q, appOf[q], perQueue[q])
	}
	fmt.Println()
	switch {
	case perQueue[1] == 0:
		fmt.Println("no offloading happened — unexpected")
	case perQueue[2] != 0 || perQueue[3] != 0:
		fmt.Println("BUG: application 2 received application 1's traffic")
	default:
		fmt.Println("queue 0 offloaded to its buddy (queue 1) only;")
		fmt.Println("application 2's queues never saw application 1's flows.")
	}
}
