// Middlebox: a forwarding appliance built on WireCAP's packet transmit
// function (paper §3.2.2b and Figure 13). Packets captured on NIC1 are
// inspected and modified in flight — the TTL is decremented and the IPv4
// checksum fixed up, like a router's fast path — then forwarded out NIC2
// with zero copy: the transmit ring references the same ring-buffer-pool
// cell the packet was captured into.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/wirecap"
)

// decrementTTL edits an IPv4 frame in place: TTL-1 with an incremental
// checksum update (RFC 1624).
func decrementTTL(frame []byte) bool {
	if len(frame) < 34 || frame[12] != 0x08 || frame[13] != 0x00 {
		return false
	}
	ttl := frame[22]
	if ttl <= 1 {
		return false // would expire; a real router sends ICMP time exceeded
	}
	frame[22] = ttl - 1
	// Incremental checksum: HC' = ~(~HC + ~m + m') over the 16-bit word
	// containing TTL and protocol.
	oldWord := uint32(ttl)<<8 | uint32(frame[23])
	newWord := uint32(ttl-1)<<8 | uint32(frame[23])
	hc := uint32(binary.BigEndian.Uint16(frame[24:26]))
	sum := (^hc&0xffff + ^oldWord&0xffff + newWord) & 0xffffffff
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	binary.BigEndian.PutUint16(frame[24:26], uint16(^sum))
	return true
}

func main() {
	sim := wirecap.NewSim()
	in := sim.NewNIC(wirecap.NICConfig{Queues: 4})
	out := sim.NewNIC(wirecap.NICConfig{Queues: 1, TxQueues: 4})

	eng, err := sim.NewEngine(in, wirecap.Options{M: 256, R: 100, Advanced: true})
	if err != nil {
		log.Fatal(err)
	}

	var forwarded, expired, txFull uint64
	for q := 0; q < in.Queues(); q++ {
		q := q
		tx := out.Tx(q)
		eng.Queue(q).Loop(func(p *wirecap.Packet) {
			if !decrementTTL(p.Data) {
				expired++
				return // dropped: the buffer recycles immediately
			}
			switch err := p.Forward(tx); err {
			case nil:
				forwarded++
			case wirecap.ErrTxFull:
				txFull++
			default:
				log.Fatal(err)
			}
		})
	}

	traffic := sim.ReplayBorder(in, wirecap.BorderOptions{Seconds: 2, Seed: 11})
	sim.Run()

	var sent uint64
	for q := 0; q < 4; q++ {
		sent += out.Tx(q).Sent()
	}
	st := eng.Stats()
	fmt.Printf("offered:          %d packets\n", traffic.Sent())
	fmt.Printf("captured:         %d (capture drops %d)\n", st.Received, st.CaptureDrops)
	fmt.Printf("forwarded:        %d (on the wire: %d)\n", forwarded, sent)
	fmt.Printf("ttl expired:      %d\n", expired)
	fmt.Printf("tx ring rejects:  %d\n", txFull)
	fmt.Printf("end-to-end loss:  %.2f%%\n",
		100*(1-float64(sent)/float64(traffic.Sent())))
}
