// Flowstats: a packet-based network performance analysis application (the
// paper's second motivating workload class). It decodes every captured
// packet zero-copy, aggregates per-flow counters, and prints the top
// talkers — the kind of tool that "uses ring buffer pools as its own data
// buffers and processes the captured packets directly from there".
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/packet"
	"repro/wirecap"
)

type flowStat struct {
	key     packet.FlowKey
	packets uint64
	bytes   uint64
}

func main() {
	sim := wirecap.NewSim()
	nic := sim.NewNIC(wirecap.NICConfig{Queues: 6})
	eng, err := sim.NewEngine(nic, wirecap.Options{M: 256, R: 100, Advanced: true})
	if err != nil {
		log.Fatal(err)
	}

	flows := make(map[packet.FlowKey]*flowStat)
	var undecodable uint64
	for q := 0; q < nic.Queues(); q++ {
		var dec packet.Decoded // per-queue scratch, reused zero-alloc
		eng.Queue(q).Loop(func(p *wirecap.Packet) {
			if err := packet.Decode(p.Data, &dec); err != nil {
				undecodable++
				return
			}
			st := flows[dec.Flow]
			if st == nil {
				st = &flowStat{key: dec.Flow}
				flows[dec.Flow] = st
			}
			st.packets++
			st.bytes += uint64(len(p.Data))
		})
	}

	traffic := sim.ReplayBorder(nic, wirecap.BorderOptions{Seconds: 2, Seed: 3})
	sim.Run()

	st := eng.Stats()
	fmt.Printf("offered %d packets, captured %d, %d flows, %d undecodable\n\n",
		traffic.Sent(), st.Received, len(flows), undecodable)

	sorted := make([]*flowStat, 0, len(flows))
	for _, f := range flows {
		sorted = append(sorted, f)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].bytes > sorted[j].bytes })

	fmt.Println("top 10 flows by bytes:")
	fmt.Printf("%-52s %10s %12s\n", "flow", "packets", "bytes")
	for i, f := range sorted {
		if i >= 10 {
			break
		}
		fmt.Printf("%-52s %10d %12d\n", f.key, f.packets, f.bytes)
	}
}
