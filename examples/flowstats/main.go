// Flowstats: a packet-based network performance analysis application (the
// paper's second motivating workload class), rebuilt on the streaming
// analytics stage. Every captured packet is decoded zero-copy and fed to
// internal/analytics, which maintains a count-min sketch, a space-saving
// heavy-hitter table, a superspreader tracker, and a bounded exact flow
// table — all with zero allocations per packet on the steady state, so
// the consumer keeps up at line rate instead of growing an unbounded map.
package main

import (
	"fmt"
	"log"

	"repro/internal/analytics"
	"repro/internal/packet"
	"repro/internal/vtime"
	"repro/wirecap"
)

func main() {
	sim := wirecap.NewSim()
	nic := sim.NewNIC(wirecap.NICConfig{Queues: 6})
	eng, err := sim.NewEngine(nic, wirecap.Options{M: 256, R: 100, Advanced: true})
	if err != nil {
		log.Fatal(err)
	}

	// One stage shared across queues: handles deliver sequentially inside
	// one simulated time domain, so no locking is needed here.
	stage := analytics.New(analytics.Config{
		FlowCapacity: 4096,
		TopK:         16,
	}, nil, nil)
	for q := 0; q < nic.Queues(); q++ {
		queue := q
		var dec packet.Decoded // per-queue scratch, reused zero-alloc
		eng.Queue(q).Loop(func(p *wirecap.Packet) {
			if err := packet.Decode(p.Data, &dec); err != nil {
				stage.NoteUndecodable()
				return
			}
			stage.Update(queue, &dec, vtime.Time(p.Timestamp))
		})
	}

	traffic := sim.ReplayBorder(nic, wirecap.BorderOptions{Seconds: 2, Seed: 3})
	sim.Run()

	st := eng.Stats()
	rep := stage.Report()
	fmt.Printf("offered %d packets, captured %d, analyzed %d (%d bytes), %d undecodable\n",
		traffic.Sent(), st.Received, rep.Updates, rep.Bytes, rep.Undecodable)
	fmt.Printf("flow table: %d resident, %d evicted (bounded at 4096)\n\n",
		rep.Flows.Resident, rep.Flows.Evictions)

	fmt.Println("top flows by bytes (exact, bounded table):")
	fmt.Printf("%-52s %10s %12s\n", "flow", "packets", "bytes")
	for _, f := range rep.Flows.Top {
		fmt.Printf("%-52s %10d %12d\n", f.Flow, f.Packets, f.Bytes)
	}

	fmt.Println("\nheavy hitters (space-saving, byte counts with error bounds):")
	for _, hh := range rep.HeavyHitters {
		fmt.Printf("%-52s %12d bytes (±%d), ~%d packets (sketch)\n",
			hh.Flow, hh.Bytes, hh.Err, hh.EstPackets)
	}

	fmt.Println("\nsuperspreader candidates (distinct destinations per source):")
	for i, sp := range rep.Superspreaders {
		if i >= 5 {
			break
		}
		fmt.Printf("%-20s ~%d distinct destinations (bound %d)\n",
			sp.Src, sp.Estimate, sp.Bound)
	}
}
