// Quickstart: open a WireCAP capture engine on a simulated NIC, install a
// BPF filter, and count matching packets — the "hello world" of the
// public API.
package main

import (
	"fmt"
	"log"

	"repro/wirecap"
)

func main() {
	// A simulation owns virtual time; everything below runs inside it.
	sim := wirecap.NewSim()

	// A 4-queue 10 GbE NIC in promiscuous mode.
	nic := sim.NewNIC(wirecap.NICConfig{Queues: 4})

	// WireCAP in advanced mode: ring buffer pools of R=100 chunks of
	// M=256 cells per queue, with buddy-group offloading at T=60%.
	eng, err := sim.NewEngine(nic, wirecap.Options{M: 256, R: 100, Advanced: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("engine:", eng.Name())

	// One capture handle per receive queue, like one pkt_handler thread
	// per queue in the paper. The filter is the paper's own.
	var matched, bytes uint64
	for q := 0; q < nic.Queues(); q++ {
		h := eng.Queue(q)
		if err := h.SetFilter("udp and net 131.225.2"); err != nil {
			log.Fatal(err)
		}
		h.Loop(func(p *wirecap.Packet) {
			matched++
			bytes += uint64(len(p.Data))
		})
	}

	// Two seconds of the bursty border-router workload.
	traffic := sim.ReplayBorder(nic, wirecap.BorderOptions{Seconds: 2, Seed: 42})
	sim.Run()

	st := eng.Stats()
	fmt.Printf("offered:   %d packets\n", traffic.Sent())
	fmt.Printf("captured:  %d (drops: %d)\n", st.Received, st.CaptureDrops)
	fmt.Printf("matched:   %d UDP packets from 131.225.2/24 (%d bytes)\n", matched, bytes)
	fmt.Printf("filtered:  %d did not match\n", st.FilterRejected)
	fmt.Printf("virtual time elapsed: %v\n", sim.Now())
}
