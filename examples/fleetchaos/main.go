// Fleetchaos: a six-host capture fleet under the headline chaos storm —
// one permanent host kill, one crash with restart, and an aggregation
// link flap — with every lost packet accounted for. The run prints the
// fleet-wide conservation ledger and the per-host books; fleet.Run
// itself errors if a single packet goes missing from the equation
//
//	FleetReceived == Aggregated + HostLost + InFlightDropped
package main

import (
	"fmt"
	"log"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/vtime"
)

func main() {
	res, err := fleet.Run("fleetchaos_example", fleet.Config{
		Hosts:   6,
		Packets: 30_000,
		Flows:   256,
		Seed:    7,
		Faults: faults.Schedule{
			// Host 1 dies for good at 5 ms: its flows re-steer to the
			// survivors after quarantine.
			{Kind: faults.HostCrash, NIC: 1, At: 5 * vtime.Millisecond},
			// Host 4 crashes at 12 ms and comes back at 20 ms: it
			// re-joins via the hello handshake and is readmitted.
			{Kind: faults.HostCrash, NIC: 4, At: 12 * vtime.Millisecond,
				Dur: 8 * vtime.Millisecond},
			// Host 2 keeps capturing through a 600 us link partition:
			// retry/backoff holds its batches, analytics shed first.
			{Kind: faults.AggLinkDown, NIC: 2, At: 8 * vtime.Millisecond,
				Dur: 600 * vtime.Microsecond},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	r := res.Report

	fmt.Printf("fleet:     %d hosts, %d packets offered\n", len(r.PerHost), r.FleetSent)
	fmt.Printf("aggregated: %d (delivery %.4f, floor 0.95)\n", r.Aggregated, r.Delivery)
	fmt.Printf("lost:      %d at capture, %d with crashed hosts, %d in flight\n",
		r.WireDropped+r.CaptureDropped, r.HostLost, r.InFlightDropped)
	fmt.Printf("control:   %d quarantines, %d readmissions, %d re-steers (%d flows moved)\n",
		r.Quarantines, r.Readmissions, r.ReSteers, r.SteerMoves)
	fmt.Printf("conserved: %v  (received == aggregated + host-lost + in-flight)\n", r.Conserved())
	fmt.Println()

	fmt.Println("host  received  aggregated  wire_drop  cap_drop  host_lost  inflight  retries")
	for _, h := range r.PerHost {
		fmt.Printf("%4d  %8d  %10d  %9d  %8d  %9d  %8d  %7d\n",
			h.Host, h.Received, h.Aggregated, h.WireDropped, h.CaptureDropped,
			h.HostLost, h.InFlightDropped+h.StaleRejected, h.Retries)
	}
	fmt.Println()
	fmt.Printf("virtual time elapsed: %v\n", r.EndNs)
	fmt.Printf("digest: %s (byte-identical for every -domains value)\n", r.Digest())
}
