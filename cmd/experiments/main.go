// Command experiments regenerates every table and figure of the WireCAP
// paper's evaluation on the simulated substrate.
//
// Usage:
//
//	experiments [-run name] [-scale f] [-pmax n] [-seed n]
//
// Names: fig3, table1, fig8, fig9, fig10, fig11, fig12, fig13, fig14, all.
// At -scale 1 and -pmax 10000000 the workloads match the paper's sizes
// (several minutes of CPU); the defaults run a faithful-shape, reduced-
// size pass in tens of seconds.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	run := flag.String("run", "all", "experiment to run (fig3..fig14, table1, all)")
	scale := flag.Float64("scale", 0.25, "border-workload scale (1.0 = paper)")
	pmax := flag.Uint64("pmax", 1_000_000, "largest burst P for fig8-10 (paper: 10000000)")
	pkts := flag.Uint64("scalepkts", 1_000_000, "per-NIC packets for fig14")
	seed := flag.Uint64("seed", 2014, "workload seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	opt := bench.Options{Scale: *scale, PMax: *pmax, ScalePackets: *pkts, Seed: *seed, CSV: *csv}
	if err := bench.ByName(*run, opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
