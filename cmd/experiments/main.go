// Command experiments regenerates every table and figure of the WireCAP
// paper's evaluation on the simulated substrate.
//
// Usage:
//
//	experiments [-run name] [-scale f] [-pmax n] [-seed n]
//	            [-cpuprofile f] [-memprofile f]
//
// Names: fig3, table1, fig8, fig9, fig10, fig11, fig12, fig13, fig14,
// ablations, chaos, fleet, all.
//
// -reports FILE runs the deterministic CI scenario suite instead and
// writes structured RunReports (JSON, metrics snapshots included) to
// FILE ("-" for stdout) — the machine-readable form of the evaluation.
//
// -trace FILE runs one CI scenario (-tracescenario, default
// chaos_queue_hang) with the packet-lifecycle flight recorder attached
// and writes the Chrome trace-event JSON to FILE ("-" for stdout).
// Inspect it with cmd/wiretrace or chrome://tracing / Perfetto.
// At -scale 1 and -pmax 10000000 the workloads match the paper's sizes
// (several minutes of CPU); the defaults run a faithful-shape, reduced-
// size pass in tens of seconds.
//
// -cpuprofile and -memprofile write pprof profiles of the run, for
// inspecting where simulator time and memory go (`go tool pprof`).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	run := flag.String("run", "all", "experiment to run (fig3..fig14, table1, all)")
	scale := flag.Float64("scale", 0.25, "border-workload scale (1.0 = paper)")
	pmax := flag.Uint64("pmax", 1_000_000, "largest burst P for fig8-10 (paper: 10000000)")
	pkts := flag.Uint64("scalepkts", 1_000_000, "per-NIC packets for fig14")
	seed := flag.Uint64("seed", 2014, "workload seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	reports := flag.String("reports", "", "run the CI scenarios and write RunReport JSON to this file (- for stdout)")
	traceOut := flag.String("trace", "", "run one CI scenario traced and write Chrome trace JSON to this file (- for stdout)")
	traceScenario := flag.String("tracescenario", "chaos_queue_hang", "CI scenario to trace (with -trace)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *traceOut != "" {
		if err := writeTrace(*traceScenario, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	if *reports != "" {
		out := os.Stdout
		if *reports != "-" {
			f, err := os.Create(*reports)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := bench.WriteReports(out); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	opt := bench.Options{Scale: *scale, PMax: *pmax, ScalePackets: *pkts, Seed: *seed, CSV: *csv}
	if err := bench.ByName(*run, opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle live heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

// writeTrace runs the named CI scenario with a flight recorder attached
// and writes the Chrome trace-event export to path.
func writeTrace(name, path string) error {
	sc, ok := bench.ScenarioByName(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (see -reports output for names)", name)
	}
	var (
		rep    bench.RunReport
		record obs.Record
		err    error
	)
	if sc.TracedRecord != nil {
		// Fleet scenarios own their recorders (one per host plus the
		// aggregator): the merged record — journeys, health lanes, the
		// fleet forensics ledger — comes back alongside the report.
		rep, record, err = sc.TracedRecord(0)
	} else {
		rec := bench.NewRecorder()
		rep, err = sc.RunTraced(rec)
		record = rec.Record(name, rep.EndNs)
	}
	if err != nil {
		return err
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := record.WriteChrome(out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "experiments: traced %s: %d sampled packets, %d journeys, %d drop records, digest %s\n",
		name, len(record.Packets), len(record.Journeys), len(record.Drops), rep.Digest())
	return nil
}
