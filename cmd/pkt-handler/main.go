// Command pkt-handler is the paper's Experiment 2 tool: it captures and
// processes packets from every queue of a simulated NIC with a chosen
// capture engine, applying a BPF filter x times per packet, and reports
// capture and delivery drop rates.
//
// Usage:
//
//	pkt-handler [-engine name] [-queues n] [-x n] [-filter expr]
//	            [-seconds s] [-seed n] [-forward]
//
// Engines: dna, netmap, pfring, psioe, pfpacket, wirecap-b, wirecap-a
// (WireCAP geometry via -m, -r, -t).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	engine := flag.String("engine", "wirecap-a", "capture engine: dna|netmap|pfring|psioe|pfpacket|wirecap-b|wirecap-a")
	queues := flag.Int("queues", 6, "receive queues")
	x := flag.Int("x", 300, "BPF filter applications per packet (0 = no load)")
	filter := flag.String("filter", "131.225.2 and udp", "BPF filter expression")
	seconds := flag.Float64("seconds", 32, "trace duration")
	seed := flag.Uint64("seed", 2014, "workload seed")
	forward := flag.Bool("forward", false, "forward processed packets out a second NIC")
	m := flag.Int("m", 256, "WireCAP descriptor segment size M")
	r := flag.Int("r", 100, "WireCAP pool size R")
	t := flag.Int("t", 60, "WireCAP offload threshold percent T")
	flag.Parse()

	var spec bench.EngineSpec
	switch strings.ToLower(*engine) {
	case "dna":
		spec = bench.DNA
	case "netmap":
		spec = bench.NETMAP
	case "pfring", "pf_ring":
		spec = bench.PFRing
	case "psioe":
		spec = bench.PSIOE
	case "pfpacket", "pf_packet", "raw":
		spec = bench.RawSocket
	case "wirecap-b", "wirecapb":
		spec = bench.WireCAPB(*m, *r)
	case "wirecap-a", "wirecapa", "wirecap":
		spec = bench.WireCAPA(*m, *r, *t)
	default:
		fmt.Fprintf(os.Stderr, "pkt-handler: unknown engine %q\n", *engine)
		os.Exit(2)
	}
	if *forward && !spec.SupportsForwarding() {
		fmt.Fprintf(os.Stderr, "pkt-handler: %s cannot forward (per the paper)\n", spec.Name())
		os.Exit(2)
	}
	res, offered, err := bench.RunBorder(bench.BorderRun{
		Spec: spec, Queues: *queues, X: *x,
		Seconds: *seconds, Seed: *seed, Forward: *forward,
		Filter: *filter,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkt-handler:", err)
		os.Exit(1)
	}

	fmt.Printf("engine:        %s\n", spec.Name())
	fmt.Printf("offered:       %d packets\n", res.Sent)
	tot := res.Stats.Totals()
	fmt.Printf("received:      %d\n", tot.Received)
	fmt.Printf("capture drops: %d (%.1f%%)\n", tot.CaptureDrops, 100*float64(tot.CaptureDrops)/float64(res.Sent))
	fmt.Printf("delivery drops:%d (%.1f%%)\n", tot.DeliveryDrops, 100*float64(tot.DeliveryDrops)/float64(res.Sent))
	fmt.Printf("processed:     %d (filter matched %d)\n", res.Handler.Processed, res.Handler.Matched)
	if *forward {
		fmt.Printf("forwarded:     %d (tx-ring rejects %d)\n", res.Forwarded, res.Handler.TxDropped)
	}
	fmt.Printf("overall drop rate: %.1f%%\n", 100*res.DropRate())
	fmt.Println()
	fmt.Printf("%-6s %12s %12s %12s\n", "queue", "offered", "capture-drop", "delivery-drop")
	for q := 0; q < *queues; q++ {
		fmt.Printf("%-6d %12d %11.1f%% %11.1f%%\n", q, offered[q],
			100*res.CaptureDropRate(q, offered[q]),
			100*res.DeliveryDropRate(q, offered[q]))
	}
}
