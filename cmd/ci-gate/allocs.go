package main

import (
	"testing"

	"repro/internal/analytics"
	"repro/internal/bpf"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// measureAllocs runs testing.AllocsPerRun over the simulator's
// zero-allocation hot paths. The names key the budget entries in
// baselines.json; the budgets committed there are all zero.
func measureAllocs() map[string]float64 {
	out := make(map[string]float64)

	reg := metrics.NewRegistry()
	c := reg.Counter("gate_counter_total", metrics.L("queue", "0"))
	g := reg.Gauge("gate_gauge", metrics.L("queue", "0"))
	h := reg.Histogram("gate_hist_ns", metrics.L("queue", "0"))
	out["metrics_counter_inc"] = testing.AllocsPerRun(1000, func() { c.Inc() })
	out["metrics_gauge_set"] = testing.AllocsPerRun(1000, func() { g.Set(42) })
	var v int64
	out["metrics_histogram_record"] = testing.AllocsPerRun(1000, func() {
		v++
		h.Record(v)
	})

	// The scheduler's steady-state cycle: one event scheduled and one
	// dispatched per iteration, over a warm slot pool.
	s := vtime.NewScheduler()
	var tick func()
	tick = func() { s.At(s.Now()+1, tick) }
	s.At(0, tick)
	out["vtime_schedule_step"] = testing.AllocsPerRun(1000, func() { s.Step() })

	// The flight recorder's disabled contract: with tracing off (nil
	// recorder), the hooks left in every hot path must cost zero
	// allocations. Exercises one hook from each family.
	var rec *obs.Recorder
	flow := packet.FlowKey{SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	out["obs_disabled_hooks"] = testing.AllocsPerRun(1000, func() {
		rec.PktArrive(0, 0, flow, 60, 1)
		rec.PktDMA(0, 0, 1, 1)
		rec.DescToCell(0, 0, 1, 0, 0, 1)
		rec.CellDeliver(0, 0, 0, 0, 0, 1)
		rec.Processed(0, 0, 1)
		rec.ChunkRecycle(0, 0, 1)
		rec.PendingDrop(obs.DropDescDepletion, 0, 0, 1)
		rec.StageCost("e", 0, "s", 1)
		_ = rec.DescClaim(0, 0, 1, 1)
		_ = rec.Sampled(flow)
	})

	// Same contract for the fleet observability hooks: every journey and
	// aggregation-plane hook on a nil recorder, and the nil health
	// sampler's Observe/Finish, must be free — the fleet hot paths carry
	// them unconditionally.
	var hs *obs.HealthSampler
	out["obs_disabled_fleet_hooks"] = testing.AllocsPerRun(1000, func() {
		rec.JourneySteer(0, flow, 1, 1)
		rec.JourneyDrop(obs.DropHostLostCrash, 1)
		rec.JourneyCapture(1, 1)
		rec.JourneyEnqueue(1, 1)
		rec.JourneyLink(1, 1)
		rec.JourneyLost(1, obs.DropInFlightHeadDrop, 1)
		rec.FleetEmit(0, 1, 1)
		rec.FleetReject(0, 1, 1)
		rec.DropN(obs.DropStalenessReject, 0, -1, 1, 1)
		hs.Observe(1)
		hs.Finish(1)
	})

	// The analytics stage's steady-state update: warm the bounded
	// tables over the flow set first, so the measured iterations take
	// the sketch/heavy-hitter/flow-table update paths without growth.
	stage := analytics.New(analytics.Config{}, nil, nil)
	decs := make([]packet.Decoded, 64)
	for i := range decs {
		decs[i] = packet.Decoded{
			Flow: packet.FlowKey{
				Src: packet.IPv4{10, 0, byte(i >> 4), byte(i)}, Dst: packet.IPv4{10, 1, 2, 3},
				SrcPort: uint16(1024 + i), DstPort: 53, Proto: packet.ProtoUDP,
			},
			Frame: make([]byte, 60),
		}
		stage.Update(0, &decs[i], vtime.Time(i))
	}
	var di int
	out["analytics_update"] = testing.AllocsPerRun(1000, func() {
		stage.Update(0, &decs[di&63], vtime.Time(di))
		di++
	})

	// The batch filter entry point over a border-trace chunk: the
	// accept bitmap is caller-owned, so the call itself allocates
	// nothing regardless of the fused/bytecode backend split.
	src := trace.NewBorder(trace.BorderConfig{Queues: 1, Duration: vtime.Second, Seed: 9})
	frames := make([][]byte, 0, 256)
	for len(frames) < 256 {
		f, _, ok := src.Next()
		if !ok {
			break
		}
		cp := make([]byte, len(f))
		copy(cp, f)
		frames = append(frames, cp)
	}
	flt := bpf.MustCompileFlat("udp and net 131.225.2", 65535)
	accept := make([]uint64, (len(frames)+63)/64)
	out["bpf_filter_chunk"] = testing.AllocsPerRun(200, func() {
		flt.FilterChunk(frames, accept)
	})

	return out
}
