package main

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/vtime"
)

// measureAllocs runs testing.AllocsPerRun over the simulator's
// zero-allocation hot paths. The names key the budget entries in
// baselines.json; the budgets committed there are all zero.
func measureAllocs() map[string]float64 {
	out := make(map[string]float64)

	reg := metrics.NewRegistry()
	c := reg.Counter("gate_counter_total", metrics.L("queue", "0"))
	g := reg.Gauge("gate_gauge", metrics.L("queue", "0"))
	h := reg.Histogram("gate_hist_ns", metrics.L("queue", "0"))
	out["metrics_counter_inc"] = testing.AllocsPerRun(1000, func() { c.Inc() })
	out["metrics_gauge_set"] = testing.AllocsPerRun(1000, func() { g.Set(42) })
	var v int64
	out["metrics_histogram_record"] = testing.AllocsPerRun(1000, func() {
		v++
		h.Record(v)
	})

	// The scheduler's steady-state cycle: one event scheduled and one
	// dispatched per iteration, over a warm slot pool.
	s := vtime.NewScheduler()
	var tick func()
	tick = func() { s.At(s.Now()+1, tick) }
	s.At(0, tick)
	out["vtime_schedule_step"] = testing.AllocsPerRun(1000, func() { s.Step() })

	return out
}
