// Command ci-gate is the deterministic regression gate: it re-runs the
// bench CI scenarios and compares the resulting RunReports against the
// committed baselines.json. Because the simulator is deterministic, the
// functional comparison is exact — a report digest or a headline metric
// that moves at all is a regression (or an intentional change, in which
// case refresh the baseline with -update and commit the diff).
//
// Three check families, in decreasing strictness:
//
//   - Scenario digests and key metrics: exact. Covers every counter,
//     per-queue fate, latency histogram bucket, and metric series the
//     simulator exports.
//   - Allocation budgets: measured with testing.AllocsPerRun, must not
//     exceed the committed budget. Guards the zero-allocation hot paths
//     (metrics instruments, scheduler, capture loop, disabled flight-
//     recorder hooks).
//   - Traced stability: one scenario re-runs with the flight recorder
//     attached; its digest must equal the scenario's baseline digest
//     (the recorder is a pure observer) and two traced runs must export
//     byte-identical Chrome traces. The fleet scenarios extend this:
//     every fleet_chaos_* run re-runs traced at 1 and -domains time
//     domains, each must reproduce the committed untraced digest, the
//     journey dump / Chrome export / health series must be
//     byte-identical across the two domain counts, and the forensics
//     ledger must re-derive the conservation books exactly —
//     independently of the identical check fleet.Run performs inside.
//   - Parallel equivalence: every scenario re-runs through the parallel
//     discrete-event executive with -domains time domains, and a fleet
//     probe runs the multi-host mailbox workload sequentially and in
//     parallel; every digest must equal its sequential counterpart
//     byte for byte. Parallelism is an execution detail — baselines.json
//     is shared with the sequential runs, never forked.
//   - Performance floor: simulated packets per wall-clock second must
//     stay above a deliberately conservative floor (the baseline records
//     measured/8), so only order-of-magnitude slowdowns trip it. Skip on
//     wildly variable machines with -skip-perf.
//
// Usage:
//
//	ci-gate [-baselines FILE] [-update] [-skip-perf] [-domains N] [-summary FILE] [-v]
//
// Exit status 0 when every check passes, 1 on any regression, 2 on
// operational errors (unreadable baseline, scenario failure).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/walltime"
)

// Baselines is the committed gate state. Regenerate with -update.
type Baselines struct {
	// Comment documents the refresh procedure inside the JSON itself.
	Comment   string             `json:"_comment"`
	Scenarios []ScenarioBaseline `json:"scenarios"`
	// Allocs maps check name to the maximum allocations per operation.
	Allocs map[string]float64 `json:"allocs"`
	Perf   PerfBaseline       `json:"perf"`
}

// ScenarioBaseline pins one scenario's expected outcome.
type ScenarioBaseline struct {
	Name    string             `json:"name"`
	About   string             `json:"about,omitempty"`
	Digest  string             `json:"digest"`
	Metrics map[string]float64 `json:"metrics"`
}

// PerfBaseline is the wall-clock guard.
type PerfBaseline struct {
	// MinSimPktsPerSec is the conservative throughput floor: the gate
	// replays the first constant-rate scenario and requires simulated
	// packets per wall second to stay above it. -update records
	// measured/8.
	MinSimPktsPerSec float64 `json:"min_sim_pkts_per_sec"`
	// MeasuredSimPktsPerSec records the throughput observed at refresh
	// time, for human context only; the gate never compares against it.
	MeasuredSimPktsPerSec float64 `json:"measured_sim_pkts_per_sec,omitempty"`
}

func main() {
	baselinesPath := flag.String("baselines", "baselines.json", "committed baseline file")
	update := flag.Bool("update", false, "regenerate the baseline file from the current build")
	skipPerf := flag.Bool("skip-perf", false, "skip the wall-clock throughput floor")
	domains := flag.Int("domains", 4, "time domains for the parallel-equivalence family (0 skips it)")
	summary := flag.String("summary", "", "write a plain-text check summary to FILE (for CI artifacts)")
	verbose := flag.Bool("v", false, "print every check, not just failures")
	flag.Parse()

	reports, err := runScenarios()
	if err != nil {
		fatal(err)
	}
	traced, err := measureTraced()
	if err != nil {
		fatal(err)
	}
	var par ParallelResult
	var ftr FleetTracedResult
	if *domains > 0 && !*update {
		par, err = measureParallel(*domains)
		if err != nil {
			fatal(err)
		}
		ftr, err = measureFleetTraced(*domains)
		if err != nil {
			fatal(err)
		}
	}
	allocs := measureAllocs()
	var perf float64
	if !*skipPerf || *update {
		perf = measurePerf()
	}

	if *update {
		b := buildBaselines(reports, allocs, perf)
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*baselinesPath, data, 0o644); err != nil {
			fatal(err)
		}
		//wirelint:allow determinism perf floor is wall-clock by design; it gates throughput, never golden digests
		fmt.Printf("ci-gate: wrote %s (%d scenarios, %d alloc budgets, perf floor %.0f pkts/s)\n",
			*baselinesPath, len(b.Scenarios), len(b.Allocs), b.Perf.MinSimPktsPerSec)
		return
	}

	data, err := os.ReadFile(*baselinesPath)
	if err != nil {
		fatal(fmt.Errorf("reading baselines (run `go run ./cmd/ci-gate -update` to create them): %w", err))
	}
	var base Baselines
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *baselinesPath, err))
	}

	failures, checks := compare(base, reports, traced, par, ftr, allocs, perf, *skipPerf)
	if *summary != "" {
		//wirelint:allow determinism perf floor is wall-clock by design; it gates throughput, never golden digests
		if err := writeSummary(*summary, *domains, checks, failures); err != nil {
			fatal(err)
		}
	}
	if *verbose {
		for _, c := range checks {
			//wirelint:allow determinism perf floor is wall-clock by design; it gates throughput, never golden digests
			fmt.Println("  ok:", c)
		}
	}
	if len(failures) > 0 {
		fmt.Printf("ci-gate: %d regression(s) against %s:\n", len(failures), *baselinesPath)
		for _, f := range failures {
			//wirelint:allow determinism perf floor is wall-clock by design; it gates throughput, never golden digests
			fmt.Println("  FAIL:", f)
		}
		fmt.Println("If the change is intentional, refresh with `go run ./cmd/ci-gate -update` and commit baselines.json.")
		os.Exit(1)
	}
	fmt.Printf("ci-gate: %d checks passed (%d scenarios, %d alloc budgets%s)\n",
		len(checks), len(reports), len(base.Allocs),
		map[bool]string{true: ", perf skipped", false: ", perf floor"}[*skipPerf])
}

// writeSummary records every check's verdict in a plain-text file CI
// uploads as an artifact, so a failed gate run is diagnosable from the
// artifact alone. Failed checks lead; the full pass list follows.
func writeSummary(path string, domains int, checks, failures []string) error {
	var buf bytes.Buffer
	verdict := "PASS"
	if len(failures) > 0 {
		verdict = "FAIL"
	}
	fmt.Fprintf(&buf, "ci-gate %s: %d checks, %d failure(s), domains=%d\n",
		verdict, len(checks), len(failures), domains)
	for _, f := range failures {
		fmt.Fprintf(&buf, "FAIL %s\n", f)
	}
	for _, c := range checks {
		fmt.Fprintf(&buf, "ok   %s\n", c)
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

func runScenarios() ([]bench.RunReport, error) {
	scenarios := bench.CIScenarios()
	reports := make([]bench.RunReport, 0, len(scenarios))
	for _, sc := range scenarios {
		rep, err := sc.Report()
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// tracedScenario is the scenario the traced-stability probe replays
// with the flight recorder attached.
const tracedScenario = "chaos_queue_hang"

// TracedResult is the traced-stability probe's outcome.
type TracedResult struct {
	// Digest is the first traced run's report digest; it must equal the
	// scenario's committed (untraced) baseline digest.
	Digest string
	// Stable is whether two traced runs exported byte-identical Chrome
	// trace JSON.
	Stable bool
}

// measureTraced runs tracedScenario twice with a fresh flight recorder
// each time and compares the exports.
func measureTraced() (TracedResult, error) {
	sc, ok := bench.ScenarioByName(tracedScenario)
	if !ok {
		return TracedResult{}, fmt.Errorf("traced scenario %s not in CIScenarios", tracedScenario)
	}
	run := func() (string, []byte, error) {
		rec := bench.NewRecorder()
		rep, err := sc.RunTraced(rec)
		if err != nil {
			return "", nil, err
		}
		var buf bytes.Buffer
		record := rec.Record(tracedScenario, rep.EndNs)
		if err := record.WriteChrome(&buf); err != nil {
			return "", nil, err
		}
		return rep.Digest(), buf.Bytes(), nil
	}
	da, ea, err := run()
	if err != nil {
		return TracedResult{}, err
	}
	db, eb, err := run()
	if err != nil {
		return TracedResult{}, err
	}
	return TracedResult{Digest: da, Stable: da == db && bytes.Equal(ea, eb)}, nil
}

// FleetTracedScenario is one fleet scenario's traced-observability
// outcome.
type FleetTracedScenario struct {
	// Digest is the traced run's report digest; it must equal the
	// scenario's committed (untraced) baseline digest.
	Digest string
	// Stable is whether the 1-domain and n-domain traced runs agreed on
	// the report digest and exported byte-identical journey dumps,
	// Chrome traces, and health series.
	Stable bool
	// LedgerErr is the forensics-ledger re-derivation's verdict: nil
	// when the ledger partitions the RunReport books exactly.
	LedgerErr error
}

// FleetTracedResult maps fleet scenario name to its traced outcome.
type FleetTracedResult struct {
	Domains   int
	Scenarios map[string]FleetTracedScenario
}

// measureFleetTraced re-runs every fleet scenario with the fleet
// observability plane attached (journeys, health lanes, forensics
// ledger), at 1 time domain and again at n, and renders every artifact
// both times.
func measureFleetTraced(n int) (FleetTracedResult, error) {
	res := FleetTracedResult{Domains: n, Scenarios: make(map[string]FleetTracedScenario)}
	for _, sc := range bench.CIScenarios() {
		if sc.TracedRecord == nil {
			continue
		}
		rep1, rec1, err := sc.TracedRecord(0)
		if err != nil {
			return res, fmt.Errorf("fleet traced %s: %w", sc.Name, err)
		}
		repN, recN, err := sc.TracedRecord(n)
		if err != nil {
			return res, fmt.Errorf("fleet traced %s at %d domains: %w", sc.Name, n, err)
		}
		stable := rep1.Digest() == repN.Digest()
		renders := []func(*bytes.Buffer, *obs.Record) error{
			func(b *bytes.Buffer, r *obs.Record) error { return r.WriteJourneys(b) },
			func(b *bytes.Buffer, r *obs.Record) error { return r.WriteChrome(b) },
			func(b *bytes.Buffer, r *obs.Record) error { return obs.WriteHealth(b, r.Health) },
		}
		for _, render := range renders {
			var b1, bn bytes.Buffer
			if err := render(&b1, &rec1); err != nil {
				return res, fmt.Errorf("fleet traced %s: %w", sc.Name, err)
			}
			if err := render(&bn, &recN); err != nil {
				return res, fmt.Errorf("fleet traced %s: %w", sc.Name, err)
			}
			stable = stable && bytes.Equal(b1.Bytes(), bn.Bytes())
		}
		res.Scenarios[sc.Name] = FleetTracedScenario{
			Digest:    rep1.Digest(),
			Stable:    stable,
			LedgerErr: fleetLedgerCheck(rep1, &rec1),
		}
	}
	return res, nil
}

// fleetLedgerCheck re-derives the fleet conservation equation from the
// merged flight record alone and compares it against the flattened
// RunReport books: per host, the three aggregation-plane loss causes
// must sum to that host's delivery drops and the two capture-side
// causes to its capture drops; fleet-wide, the loss causes must sum
// exactly to received − delivered. fleet.Run asserts the same equality
// against its own books — re-deriving it here from the committed report
// shape keeps the gate honest even if that layer changes.
func fleetLedgerCheck(rep bench.RunReport, rec *obs.Record) error {
	led := rec.FleetLedger(0)
	for h, q := range rep.PerQueue {
		lost := obs.SumCause(led, obs.DropHostLostCrash, h) +
			obs.SumCause(led, obs.DropInFlightHeadDrop, h) +
			obs.SumCause(led, obs.DropStalenessReject, h)
		if lost != q.DeliveryDrops {
			return fmt.Errorf("host %d: ledger loss causes sum to %d, books say delivery drops %d",
				h, lost, q.DeliveryDrops)
		}
		shed := obs.SumCause(led, obs.DropHostBrownoutShed, h) +
			obs.SumCause(led, obs.DropLink, h)
		if shed != q.CaptureDrops {
			return fmt.Errorf("host %d: ledger capture causes sum to %d, books say capture drops %d",
				h, shed, q.CaptureDrops)
		}
	}
	lost := obs.SumCause(led, obs.DropHostLostCrash, -1) +
		obs.SumCause(led, obs.DropInFlightHeadDrop, -1) +
		obs.SumCause(led, obs.DropStalenessReject, -1)
	if want := rep.Totals.Received - rep.Totals.Delivered; lost != want {
		return fmt.Errorf("fleet: ledger loss causes sum to %d, received-delivered = %d", lost, want)
	}
	return nil
}

// ParallelResult is the parallel-equivalence family's outcome.
type ParallelResult struct {
	// Domains is the domain count the family ran at (0: skipped).
	Domains int
	// Digests maps scenario name to the digest of its run through the
	// parallel executive; each must equal the committed baseline digest.
	Digests map[string]string
	// FleetSeq / FleetPar are the multi-host mailbox probe's digests at
	// one domain and at Domains domains; they must be equal. The fleet
	// has no baselines.json entry — equivalence between the two fresh
	// runs is the whole check.
	FleetSeq string
	FleetPar string
}

// measureParallel re-runs every CI scenario through the parallel
// executive with n time domains and runs the fleet probe sequentially
// and in parallel.
func measureParallel(n int) (ParallelResult, error) {
	res := ParallelResult{Domains: n, Digests: make(map[string]string)}
	for _, sc := range bench.CIScenarios() {
		rep, err := sc.RunDomains(n)
		if err != nil {
			return ParallelResult{}, fmt.Errorf("scenario %s at %d domains: %w", sc.Name, n, err)
		}
		res.Digests[sc.Name] = rep.Digest()
	}
	fleet := func(domains int) (string, error) {
		out, err := bench.RunFleet("ci_fleet", bench.FleetRun{
			Spec: bench.WireCAPA(64, 32, 60), Hosts: 2 * n, Queues: 2, X: 300,
			Packets: 3_000, PacketsPerSec: 60_000, Seed: 41,
			MilestoneEvery: 500, Domains: domains,
		})
		if err != nil {
			return "", fmt.Errorf("fleet probe at %d domains: %w", domains, err)
		}
		return out.Report.Digest(), nil
	}
	var err error
	if res.FleetSeq, err = fleet(1); err != nil {
		return ParallelResult{}, err
	}
	if res.FleetPar, err = fleet(n); err != nil {
		return ParallelResult{}, err
	}
	return res, nil
}

// buildBaselines snapshots the current build's behavior. Alloc budgets
// are committed exactly as measured (the hot paths are zero-allocation
// by design, so any budget > 0 is already meaningful); the perf floor
// is measured/8 so only order-of-magnitude slowdowns fail.
func buildBaselines(reports []bench.RunReport, allocs map[string]float64, perf float64) Baselines {
	b := Baselines{
		Comment: "Committed regression-gate state. Refresh after intentional behavior changes with: go run ./cmd/ci-gate -update (then commit the diff).",
		Allocs:  allocs,
		Perf: PerfBaseline{
			MinSimPktsPerSec:      math.Floor(perf / 8),
			MeasuredSimPktsPerSec: math.Floor(perf),
		},
	}
	scenarios := bench.CIScenarios()
	for i, rep := range reports {
		b.Scenarios = append(b.Scenarios, ScenarioBaseline{
			Name:    rep.Scenario,
			About:   scenarios[i].About,
			Digest:  rep.Digest(),
			Metrics: rep.KeyMetrics(),
		})
	}
	return b
}

// compare returns human-readable failure lines and the names of all
// checks performed. Deterministic metrics are compared exactly; alloc
// budgets as measured <= budget; perf as measured >= floor.
func compare(base Baselines, reports []bench.RunReport, traced TracedResult, par ParallelResult, ftr FleetTracedResult, allocs map[string]float64, perf float64, skipPerf bool) (failures, checks []string) {
	byName := make(map[string]bench.RunReport, len(reports))
	for _, rep := range reports {
		byName[rep.Scenario] = rep
	}
	for _, sb := range base.Scenarios {
		rep, ok := byName[sb.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("scenario %s: in baseline but not produced by this build", sb.Name))
			continue
		}
		delete(byName, sb.Name)
		checks = append(checks, "digest "+sb.Name)
		if d := rep.Digest(); d != sb.Digest {
			failures = append(failures, fmt.Sprintf("scenario %s: report digest %s != baseline %s (%s)",
				sb.Name, d, sb.Digest, sb.About))
		}
		cur := rep.KeyMetrics()
		names := make([]string, 0, len(sb.Metrics))
		for name := range sb.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			want := sb.Metrics[name]
			got, ok := cur[name]
			checks = append(checks, fmt.Sprintf("metric %s/%s", sb.Name, name))
			if !ok {
				failures = append(failures, fmt.Sprintf("scenario %s: metric %s missing (baseline %g)", sb.Name, name, want))
				continue
			}
			if got != want {
				failures = append(failures, fmt.Sprintf("scenario %s: metric %s = %g, baseline %g (delta %+g)",
					sb.Name, name, got, want, got-want))
			}
		}
	}
	leftovers := make([]string, 0, len(byName))
	for name := range byName {
		leftovers = append(leftovers, name)
	}
	sort.Strings(leftovers)
	for _, name := range leftovers {
		failures = append(failures, fmt.Sprintf("scenario %s: produced by this build but missing from baseline (refresh with -update)", name))
	}

	// Fleet resilience: the fleet_chaos_* reports must balance their loss
	// books exactly and clear the delivery floor. The fleet runtime and
	// the bench flattening each assert this internally; re-deriving it
	// here from the committed RunReport shape keeps the gate honest even
	// if those layers change.
	for _, rep := range reports {
		if !strings.HasPrefix(rep.Scenario, "fleet_chaos_") {
			continue
		}
		t := rep.Totals
		checks = append(checks, "fleet conservation "+rep.Scenario)
		if t.Received != t.Delivered+t.DeliveryDrops || rep.Sent != t.Received+t.CaptureDrops {
			failures = append(failures, fmt.Sprintf(
				"fleet %s: books unbalanced: sent %d, received %d, delivered %d, capture drops %d, delivery drops %d",
				rep.Scenario, rep.Sent, t.Received, t.Delivered, t.CaptureDrops, t.DeliveryDrops))
		}
		checks = append(checks, "fleet delivery "+rep.Scenario)
		if rep.Sent > 0 {
			if got := float64(t.Delivered) / float64(rep.Sent); got < bench.FleetDeliveryFloor {
				failures = append(failures, fmt.Sprintf(
					"fleet %s: delivery %.4f below floor %.2f", rep.Scenario, got, bench.FleetDeliveryFloor))
			}
		}
	}

	budgets := make([]string, 0, len(base.Allocs))
	for name := range base.Allocs {
		budgets = append(budgets, name)
	}
	sort.Strings(budgets)
	for _, name := range budgets {
		budget := base.Allocs[name]
		got, ok := allocs[name]
		checks = append(checks, "allocs "+name)
		if !ok {
			failures = append(failures, fmt.Sprintf("allocs %s: check not implemented in this build (baseline %g)", name, budget))
			continue
		}
		if got > budget {
			failures = append(failures, fmt.Sprintf("allocs %s: %g allocs/op exceeds budget %g", name, got, budget))
		}
	}

	for _, sb := range base.Scenarios {
		if sb.Name != tracedScenario {
			continue
		}
		checks = append(checks, "traced digest "+tracedScenario)
		if traced.Digest != sb.Digest {
			failures = append(failures, fmt.Sprintf(
				"traced %s: digest %s != baseline %s (the flight recorder perturbed the run)",
				tracedScenario, traced.Digest, sb.Digest))
		}
		checks = append(checks, "traced export determinism")
		if !traced.Stable {
			failures = append(failures, fmt.Sprintf(
				"traced %s: two seeded runs exported different Chrome traces", tracedScenario))
		}
	}

	for _, sb := range base.Scenarios {
		ft, ok := ftr.Scenarios[sb.Name]
		if !ok {
			continue
		}
		checks = append(checks, "fleet traced digest "+sb.Name)
		if ft.Digest != sb.Digest {
			failures = append(failures, fmt.Sprintf(
				"fleet traced %s: digest %s != baseline %s (the observability plane perturbed the run)",
				sb.Name, ft.Digest, sb.Digest))
		}
		checks = append(checks, fmt.Sprintf("fleet traced domains=%d exports %s", ftr.Domains, sb.Name))
		if !ft.Stable {
			failures = append(failures, fmt.Sprintf(
				"fleet traced %s: journey dump / Chrome export / health series differ between 1 and %d domains",
				sb.Name, ftr.Domains))
		}
		checks = append(checks, "fleet forensics ledger "+sb.Name)
		if ft.LedgerErr != nil {
			failures = append(failures, fmt.Sprintf(
				"fleet traced %s: forensics ledger not a partition: %v", sb.Name, ft.LedgerErr))
		}
	}

	if par.Domains > 0 {
		for _, sb := range base.Scenarios {
			got, ok := par.Digests[sb.Name]
			checks = append(checks, fmt.Sprintf("domains=%d digest %s", par.Domains, sb.Name))
			if !ok {
				failures = append(failures, fmt.Sprintf(
					"domains=%d %s: scenario not produced by the parallel family", par.Domains, sb.Name))
				continue
			}
			if got != sb.Digest {
				failures = append(failures, fmt.Sprintf(
					"domains=%d %s: digest %s != baseline %s (the parallel executive changed the run)",
					par.Domains, sb.Name, got, sb.Digest))
			}
		}
		checks = append(checks, fmt.Sprintf("domains=%d fleet equivalence", par.Domains))
		if par.FleetSeq != par.FleetPar {
			failures = append(failures, fmt.Sprintf(
				"domains=%d fleet: parallel digest %s != sequential %s (placement leaked into the mailbox fabric)",
				par.Domains, par.FleetPar, par.FleetSeq))
		}
	}

	if !skipPerf && base.Perf.MinSimPktsPerSec > 0 {
		checks = append(checks, "perf floor")
		if perf < base.Perf.MinSimPktsPerSec {
			failures = append(failures, fmt.Sprintf("perf: %.0f simulated pkts per wall second below floor %.0f",
				perf, base.Perf.MinSimPktsPerSec))
		}
	}
	return failures, checks
}

// measurePerf times one constant-rate WireCAP run and reports simulated
// packets per wall-clock second.
func measurePerf() float64 {
	const packets = 200_000
	sw := walltime.Start()
	_, err := bench.RunConstant(bench.ConstantRun{
		Spec: bench.WireCAPB(256, 100), Packets: packets, X: 300, Seed: 7,
	})
	if err != nil {
		fatal(err)
	}
	return packets / sw.Seconds()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ci-gate:", err)
	os.Exit(2)
}
