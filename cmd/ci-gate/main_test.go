package main

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bench"
)

// gateReport runs one cheap scenario once per test binary.
var gateReport *bench.RunReport

func report(t *testing.T) bench.RunReport {
	t.Helper()
	if gateReport == nil {
		sc := bench.CIScenarios()[0]
		rep, err := sc.Report()
		if err != nil {
			t.Fatal(err)
		}
		gateReport = &rep
	}
	return *gateReport
}

func cleanBaseline(t *testing.T) Baselines {
	rep := report(t)
	return Baselines{
		Scenarios: []ScenarioBaseline{{
			Name:    rep.Scenario,
			Digest:  rep.Digest(),
			Metrics: rep.KeyMetrics(),
		}},
		Allocs: map[string]float64{"metrics_counter_inc": 0},
		Perf:   PerfBaseline{MinSimPktsPerSec: 1},
	}
}

// TestGatePassesClean: an untampered baseline produces zero failures.
func TestGatePassesClean(t *testing.T) {
	rep := report(t)
	allocs := map[string]float64{"metrics_counter_inc": 0}
	failures, checks := compare(cleanBaseline(t), []bench.RunReport{rep}, TracedResult{}, ParallelResult{}, FleetTracedResult{}, allocs, 100, false)
	if len(failures) != 0 {
		t.Fatalf("clean comparison failed: %v", failures)
	}
	if len(checks) == 0 {
		t.Fatal("no checks performed")
	}
}

// TestGateDetectsSeededRegressions perturbs the baseline one axis at a
// time and requires the gate to flag each: digest drift, metric drift,
// a missing scenario, an alloc budget bust, and a perf floor miss.
func TestGateDetectsSeededRegressions(t *testing.T) {
	rep := report(t)
	allocs := map[string]float64{"metrics_counter_inc": 0}

	cases := []struct {
		name    string
		mutate  func(*Baselines)
		allocs  map[string]float64
		perf    float64
		skip    bool
		wantSub string
	}{
		{
			name:    "digest drift",
			mutate:  func(b *Baselines) { b.Scenarios[0].Digest = "0000000000000000" },
			wantSub: "report digest",
		},
		{
			name:    "metric drift",
			mutate:  func(b *Baselines) { b.Scenarios[0].Metrics["sent"]++ },
			wantSub: "metric sent",
		},
		{
			name: "scenario missing from build",
			mutate: func(b *Baselines) {
				b.Scenarios = append(b.Scenarios, ScenarioBaseline{Name: "ghost_scenario"})
			},
			wantSub: "not produced by this build",
		},
		{
			name:    "alloc budget bust",
			mutate:  func(b *Baselines) {},
			allocs:  map[string]float64{"metrics_counter_inc": 3},
			wantSub: "exceeds budget",
		},
		{
			name:    "perf floor miss",
			mutate:  func(b *Baselines) { b.Perf.MinSimPktsPerSec = 1e18 },
			wantSub: "below floor",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := cleanBaseline(t)
			tc.mutate(&base)
			a := tc.allocs
			if a == nil {
				a = allocs
			}
			perf := tc.perf
			if perf == 0 {
				perf = 100
			}
			failures, _ := compare(base, []bench.RunReport{rep}, TracedResult{}, ParallelResult{}, FleetTracedResult{}, a, perf, tc.skip)
			if len(failures) == 0 {
				t.Fatal("tampered baseline passed the gate")
			}
			found := false
			for _, f := range failures {
				if strings.Contains(f, tc.wantSub) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no failure mentions %q; got %v", tc.wantSub, failures)
			}
		})
	}
}

// TestSkipPerfSuppressesFloor: -skip-perf must disable only the
// wall-clock check, which is the one legitimately environment-dependent
// check the gate has.
func TestSkipPerfSuppressesFloor(t *testing.T) {
	rep := report(t)
	base := cleanBaseline(t)
	base.Perf.MinSimPktsPerSec = 1e18
	allocs := map[string]float64{"metrics_counter_inc": 0}
	failures, _ := compare(base, []bench.RunReport{rep}, TracedResult{}, ParallelResult{}, FleetTracedResult{}, allocs, 1, true)
	if len(failures) != 0 {
		t.Fatalf("skip-perf still failed: %v", failures)
	}
}

// TestTracedStabilityChecks: when the baseline carries the traced
// scenario, the gate must flag a traced-digest mismatch and unstable
// exports, and pass a matching stable probe.
func TestTracedStabilityChecks(t *testing.T) {
	base := Baselines{Scenarios: []ScenarioBaseline{{Name: tracedScenario, Digest: "abc"}}}
	tracedFailures := func(tr TracedResult) []string {
		failures, _ := compare(base, nil, tr, ParallelResult{}, FleetTracedResult{}, nil, 0, true)
		var out []string
		for _, f := range failures {
			if strings.Contains(f, "traced") {
				out = append(out, f)
			}
		}
		return out
	}
	if fs := tracedFailures(TracedResult{Digest: "abc", Stable: true}); len(fs) != 0 {
		t.Fatalf("matching stable probe failed: %v", fs)
	}
	fs := tracedFailures(TracedResult{Digest: "xyz", Stable: false})
	if len(fs) != 2 {
		t.Fatalf("mismatching unstable probe produced %d traced failures, want 2: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0], "perturbed") || !strings.Contains(fs[1], "different Chrome traces") {
		t.Fatalf("unexpected traced failure wording: %v", fs)
	}
}

// TestParallelEquivalenceChecks: when the parallel family ran, the gate
// must flag a scenario whose parallel digest drifts from the committed
// baseline, a scenario the family failed to produce, and a fleet probe
// whose sequential and parallel digests disagree — and pass a matching
// probe silently.
func TestParallelEquivalenceChecks(t *testing.T) {
	base := Baselines{Scenarios: []ScenarioBaseline{{Name: "constant_rate", Digest: "abc"}}}
	parFailures := func(par ParallelResult) []string {
		failures, _ := compare(base, nil, TracedResult{}, par, FleetTracedResult{}, nil, 0, true)
		var out []string
		for _, f := range failures {
			if strings.Contains(f, "domains=") {
				out = append(out, f)
			}
		}
		return out
	}
	clean := ParallelResult{
		Domains:  2,
		Digests:  map[string]string{"constant_rate": "abc"},
		FleetSeq: "f1", FleetPar: "f1",
	}
	if fs := parFailures(clean); len(fs) != 0 {
		t.Fatalf("matching parallel family failed: %v", fs)
	}
	drift := clean
	drift.Digests = map[string]string{"constant_rate": "xyz"}
	if fs := parFailures(drift); len(fs) != 1 || !strings.Contains(fs[0], "parallel executive changed the run") {
		t.Fatalf("digest drift not flagged: %v", fs)
	}
	missing := clean
	missing.Digests = map[string]string{}
	if fs := parFailures(missing); len(fs) != 1 || !strings.Contains(fs[0], "not produced by the parallel family") {
		t.Fatalf("missing scenario not flagged: %v", fs)
	}
	leak := clean
	leak.FleetPar = "f2"
	if fs := parFailures(leak); len(fs) != 1 || !strings.Contains(fs[0], "placement leaked") {
		t.Fatalf("fleet divergence not flagged: %v", fs)
	}
	if fs := parFailures(ParallelResult{}); len(fs) != 0 {
		t.Fatalf("skipped family still produced failures: %v", fs)
	}
}

// TestFleetTracedChecks: when the fleet-traced family ran, the gate
// must flag a traced digest that drifts from the committed baseline,
// exports that differ across domain counts, and a forensics ledger
// that fails to partition the books — and pass a clean probe silently.
func TestFleetTracedChecks(t *testing.T) {
	base := Baselines{Scenarios: []ScenarioBaseline{{Name: "fleet_chaos_host_kill", Digest: "abc"}}}
	fleetFailures := func(ftr FleetTracedResult) []string {
		failures, _ := compare(base, nil, TracedResult{}, ParallelResult{}, ftr, nil, 0, true)
		var out []string
		for _, f := range failures {
			if strings.Contains(f, "fleet traced") {
				out = append(out, f)
			}
		}
		return out
	}
	clean := FleetTracedResult{Domains: 4, Scenarios: map[string]FleetTracedScenario{
		"fleet_chaos_host_kill": {Digest: "abc", Stable: true},
	}}
	if fs := fleetFailures(clean); len(fs) != 0 {
		t.Fatalf("clean fleet probe failed: %v", fs)
	}
	broken := FleetTracedResult{Domains: 4, Scenarios: map[string]FleetTracedScenario{
		"fleet_chaos_host_kill": {Digest: "xyz", Stable: false, LedgerErr: fmt.Errorf("host 0 off by 1")},
	}}
	fs := fleetFailures(broken)
	if len(fs) != 3 {
		t.Fatalf("broken fleet probe produced %d failures, want 3: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0], "perturbed") ||
		!strings.Contains(fs[1], "differ between 1 and 4 domains") ||
		!strings.Contains(fs[2], "not a partition") {
		t.Fatalf("unexpected fleet traced failure wording: %v", fs)
	}
	if fs := fleetFailures(FleetTracedResult{}); len(fs) != 0 {
		t.Fatalf("skipped fleet family still produced failures: %v", fs)
	}
}

// TestFleetLedgerCheckRederives: the external ledger re-derivation must
// accept the real storm record and reject a tampered one.
func TestFleetLedgerCheckRederives(t *testing.T) {
	sc, ok := bench.ScenarioByName("fleet_chaos_host_kill")
	if !ok {
		t.Fatal("fleet_chaos_host_kill not in CIScenarios")
	}
	rep, rec, err := sc.TracedRecord(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fleetLedgerCheck(rep, &rec); err != nil {
		t.Fatalf("real storm record failed the ledger check: %v", err)
	}
	tampered := rep
	tampered.Totals.Delivered++
	if err := fleetLedgerCheck(tampered, &rec); err == nil {
		t.Fatal("tampered books passed the ledger check")
	}
}

// TestMeasuredAllocsAreZero pins the zero-allocation contract the
// committed budgets rely on.
func TestMeasuredAllocsAreZero(t *testing.T) {
	for name, v := range measureAllocs() {
		if v != 0 {
			t.Errorf("%s: %g allocs/op on a hot path budgeted at zero", name, v)
		}
	}
}
