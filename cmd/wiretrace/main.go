// Command wiretrace inspects a flight-recorder export produced by
// `experiments -trace` (Chrome trace-event JSON with the full obs.Record
// under otherData).
//
// Usage:
//
//	wiretrace -r trace.json                  list sampled packets (one line each)
//	wiretrace -r trace.json -flow 10.0.0.7   only flows whose string contains the substring
//	wiretrace -r trace.json -queue 1         only packets steered to queue 1
//	wiretrace -r trace.json -pkt 1234        one packet's full stage timeline
//	wiretrace -r trace.json -cause reclaim   drop-ledger records with that cause
//	wiretrace -r trace.json -report          the full drop-forensics report
//	wiretrace -r trace.json -journeys        fleet records: end-to-end packet journeys
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	in := flag.String("r", "", "trace JSON file to read (required; - for stdin)")
	flow := flag.String("flow", "", "filter packets by flow substring")
	queue := flag.Int("queue", -1, "filter packets/drops by queue (-1: all)")
	cause := flag.String("cause", "", "list drop-ledger records with this cause (see -report for names)")
	pkt := flag.Int64("pkt", -1, "print the full timeline of this packet id")
	report := flag.Bool("report", false, "print the drop-forensics report")
	journeys := flag.Bool("journeys", false, "print the fleet journey dump (fleet records only)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f := os.Stdin
	if *in != "-" {
		var err error
		f, err = os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	rec, err := obs.ReadRecord(f)
	if err != nil {
		fatal(err)
	}

	switch {
	case *journeys:
		if len(rec.Journeys) == 0 && len(rec.FleetEvents) == 0 {
			fatal(fmt.Errorf("no fleet journeys in %s (not a fleet record, or traced with journeys disabled)", *in))
		}
		err = rec.WriteJourneys(os.Stdout)
	case *report:
		err = rec.WriteForensics(os.Stdout)
	case *pkt >= 0:
		err = timeline(&rec, uint64(*pkt))
	case *cause != "":
		err = drops(&rec, *cause, *queue)
	default:
		err = list(&rec, *flow, *queue)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wiretrace:", err)
	os.Exit(1)
}

// timeline prints one packet's full stage timeline.
func timeline(rec *obs.Record, id uint64) error {
	for i := range rec.Packets {
		if rec.Packets[i].ID == id {
			return rec.WriteTimeline(os.Stdout, &rec.Packets[i])
		}
	}
	return fmt.Errorf("packet %d not in the trace (sampled 1/%d flows, %d traces kept)",
		id, rec.SampleEvery, len(rec.Packets))
}

// drops prints the ledger records matching cause (and queue, if >= 0).
func drops(rec *obs.Record, cause string, queue int) error {
	n := 0
	for _, d := range rec.Drops {
		if d.Cause != cause || (queue >= 0 && d.Queue != queue) {
			continue
		}
		n++
		fmt.Printf("%12dns  nic=%d queue=%-2d count=%-5d", d.At, d.NIC, d.Queue, d.Count)
		if d.Pkt >= 0 {
			fmt.Printf(" pkt=%d", d.Pkt)
		}
		if d.Fault >= 0 {
			fmt.Printf(" fault=%d", d.Fault)
		}
		fmt.Println()
	}
	fmt.Printf("%d records, %d packets total for cause %s\n", n, rec.DropTotals[cause], cause)
	if n == 0 && rec.DropTotals[cause] == 0 {
		names := strings.Join(obs.CauseNames(), ", ")
		fmt.Printf("(known causes: %s)\n", names)
	}
	return nil
}

// list prints one line per sampled packet, oldest first.
func list(rec *obs.Record, flow string, queue int) error {
	n := 0
	for i := range rec.Packets {
		p := &rec.Packets[i]
		if flow != "" && !strings.Contains(p.FlowS, flow) {
			continue
		}
		if queue >= 0 && p.Queue != queue {
			continue
		}
		n++
		last := p.Stamps[len(p.Stamps)-1]
		fate := last.Stage.String()
		if p.Drop != "" {
			fate = "drop:" + p.Drop
		}
		fmt.Printf("pkt %-7d q%-2d %-42s %2d stamps  %12dns..%dns  %s\n",
			p.ID, p.Queue, p.FlowS, len(p.Stamps), p.Stamps[0].At, last.At, fate)
	}
	fmt.Printf("%d of %d sampled packets shown (1/%d flows traced)\n", n, len(rec.Packets), rec.SampleEvery)
	return nil
}
