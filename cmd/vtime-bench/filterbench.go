package main

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"

	"repro/internal/bpf"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// ---- filter_path: BPF backend comparison over the matcher corpus ----
//
// The same expression corpus runs over the same border-trace frames on
// every backend — interpreter, closure JIT, flattened bytecode, and the
// flattened per-chunk batch entry point. Each entry's digest covers the
// full (program x frame) accept matrix, so -check pins that all four
// backends agree bit for bit (the differential property, re-proven on
// every CI run) before comparing speed. The headline gate: flattened
// must hold >= 3x over the interpreter on this corpus.

// filterExprs is the matcher corpus: the expression shapes real
// deployments filter by (protocols, nets, ports, and the compound
// web/DNS/subnet filters that dominate in practice), each exercising a
// different fusion or flattening path.
var filterExprs = []string{
	"ip",
	"udp",
	"tcp",
	"udp and net 131.225.2",
	"tcp port 80 or tcp port 443",
	"src net 10.0.0.0/8 and dst port 53",
	"host 131.225.2.4",
	"udp dst port 53",
	"greater 128",
	"tcp and (port 80 or port 443) and net 131.225.0.0/16",
	"tcp port 80 or tcp port 443 or tcp port 8080 or udp port 53",
	"udp and dst net 224.0.0.0/4",
	"src net 131.225.0.0/16 and tcp",
}

const (
	filterFrameCount = 2048
	filterChunkM     = 256
	// filterTolerance is the committed -check window for this family:
	// sub-microsecond match loops wobble more than the 4x default
	// assumes, and the exact regression signal is the digest anyway.
	filterTolerance = 6.0
	// filterSpeedupFloor is the flattened-over-interpreter gate.
	filterSpeedupFloor = 3.0
)

// filterFrames materializes the border-trace frame corpus once,
// copying each frame out of the generator's reused scratch.
func filterFrames() [][]byte {
	src := trace.NewBorder(trace.BorderConfig{
		Queues: 4, Duration: 2 * vtime.Second, Seed: 42,
	})
	frames := make([][]byte, 0, filterFrameCount)
	for len(frames) < filterFrameCount {
		f, _, ok := src.Next()
		if !ok {
			break
		}
		cp := make([]byte, len(f))
		copy(cp, f)
		frames = append(frames, cp)
	}
	return frames
}

// acceptDigest fingerprints a (program x frame) accept matrix.
func acceptDigest(bits []byte) string {
	h := fnv.New64a()
	h.Write(bits)
	return fmt.Sprintf("%016x", h.Sum64())
}

// measureFilter benchmarks one per-packet backend: an op is the full
// corpus sweep (every program over every frame). The digest is computed
// from the match function outside the timed loop, in (program, frame)
// order on every backend. The caller supplies the timed sweep so each
// backend's Run is a direct method call — the measurement compares
// match code, not a shared dispatch closure — and the sweep must walk
// frame-major (each frame through all programs while cache-hot, the
// order the engine's consumer path sees).
func measureFilter(name string, frames [][]byte, progs int, match func(prog int, frame []byte) bool, sweep func()) Record {
	bits := make([]byte, 0, progs*len(frames))
	for p := 0; p < progs; p++ {
		for _, f := range frames {
			if match(p, f) {
				bits = append(bits, 1)
			} else {
				bits = append(bits, 0)
			}
		}
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sweep()
		}
	})
	cur := Entry{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Digest:      acceptDigest(bits),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Tolerance:   filterTolerance,
	}
	// matches per second of simulated filtering work
	cur.SimPktsPerSec = float64(progs*len(frames)) / (cur.NsPerOp / 1e9)
	return Record{Name: name, Current: cur}
}

// measureFilterChunk benchmarks the batch entry point: frames are
// filtered filterChunkM at a time through FilterChunk, the shape the
// engine's consumer path uses per handed chunk.
func measureFilterChunk(frames [][]byte, flats []*bpf.FlatProgram) Record {
	accept := make([]uint64, (filterChunkM+63)/64)
	bits := make([]byte, 0, len(flats)*len(frames))
	sweep := func(record bool) {
		for _, fp := range flats {
			for base := 0; base < len(frames); base += filterChunkM {
				end := base + filterChunkM
				if end > len(frames) {
					end = len(frames)
				}
				batch := frames[base:end]
				fp.FilterChunk(batch, accept)
				if record {
					for i := range batch {
						bits = append(bits, byte(accept[i>>6]>>(uint(i)&63)&1))
					}
				}
			}
		}
	}
	sweep(true)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sweep(false)
		}
	})
	cur := Entry{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Digest:      acceptDigest(bits),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Tolerance:   filterTolerance,
	}
	cur.SimPktsPerSec = float64(len(flats)*len(frames)) / (cur.NsPerOp / 1e9)
	return Record{Name: "filter_path_chunk", Current: cur}
}

// filterPathRecords measures every backend over the shared corpus.
func filterPathRecords() []Record {
	frames := filterFrames()
	n := len(filterExprs)
	vms := make([]*bpf.VM, n)
	jits := make([]*bpf.JITProgram, n)
	flats := make([]*bpf.FlatProgram, n)
	for i, expr := range filterExprs {
		prog := bpf.MustCompile(expr, 65535)
		vm, err := bpf.NewVM(prog)
		if err != nil {
			panic(err)
		}
		jit, err := bpf.JITCompile(prog)
		if err != nil {
			panic(err)
		}
		vms[i], jits[i] = vm, jit
		flats[i] = bpf.MustCompileFlat(expr, 65535)
	}
	return []Record{
		measureFilter("filter_path_interp", frames, n, func(p int, f []byte) bool {
			return vms[p].Run(f) != 0
		}, func() {
			for _, f := range frames {
				for _, vm := range vms {
					vm.Run(f)
				}
			}
		}),
		measureFilter("filter_path_jit", frames, n, func(p int, f []byte) bool {
			return jits[p].Run(f) != 0
		}, func() {
			for _, f := range frames {
				for _, jit := range jits {
					jit.Run(f)
				}
			}
		}),
		measureFilter("filter_path_flat", frames, n, func(p int, f []byte) bool {
			return flats[p].Run(f) != 0
		}, func() {
			for _, f := range frames {
				for _, fp := range flats {
					fp.Run(f)
				}
			}
		}),
		measureFilterChunk(frames, flats),
	}
}

// checkFilterPath enforces the backend-equivalence and speedup gates on
// the fresh filter_path measurements themselves: all four digests must
// be identical (any divergence is a correctness bug, not noise), and
// flattened must hold the committed speedup floor over the interpreter.
func checkFilterPath(records []Record) int {
	byName := make(map[string]Entry, len(records))
	for _, r := range records {
		byName[r.Name] = r.Current
	}
	interp, ok := byName["filter_path_interp"]
	if !ok {
		return 0
	}
	status := 0
	for _, name := range []string{"filter_path_jit", "filter_path_flat", "filter_path_chunk"} {
		e, ok := byName[name]
		if !ok {
			continue
		}
		if e.Digest != interp.Digest {
			fmt.Printf("FAIL %-26s digest %s != interpreter's %s (backend divergence)\n",
				name, e.Digest, interp.Digest)
			status = 1
		}
	}
	if flat, ok := byName["filter_path_flat"]; ok {
		speedup := interp.NsPerOp / flat.NsPerOp
		if speedup < filterSpeedupFloor {
			fmt.Printf("FAIL filter_path_flat speedup %.2fx over interpreter, want >= %.1fx\n",
				speedup, filterSpeedupFloor)
			status = 1
		} else {
			fmt.Printf("ok   filter speedup gate: flattened %.2fx over interpreter\n", speedup)
		}
	}
	return status
}
