// Command vtime-bench measures the simulation engine's hot paths and
// writes the results to BENCH_vtime.json: scheduler microbenchmarks
// (schedule, cancel, and the self-rescheduling schedule+step cycle, each
// against one million pending events) and an end-to-end wall-clock run of
// bench.RunConstant. Each entry carries the corresponding measurement
// taken at the container/heap-based scheduler this engine replaced, so
// the file documents the before/after directly.
//
// Usage:
//
//	vtime-bench [-o BENCH_vtime.json]
//	vtime-bench -check [-baseline BENCH_vtime.json] [-tolerance 4.0]
//
// -check is the CI mode: instead of overwriting the committed file it
// re-measures and compares against it read-only — allocs/op must not
// exceed the committed value at all, and ns/op must stay within the
// tolerance factor (wall-clock-safe: only order-of-magnitude slowdowns
// fail at the default 4.0x). Exit status 1 on regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/bench"
	"repro/internal/vtime"
)

// baseline holds the same benchmarks measured at the pre-rewrite revision
// (container/heap scheduler, per-event closure allocation), on the same
// class of host this tool runs on. They are retained here so regenerating
// the JSON keeps the before/after comparison.
var baseline = map[string]Entry{
	"schedule_1m_pending":      {NsPerOp: 347.5, AllocsPerOp: 1, BytesPerOp: 57},
	"cancel_1m_pending":        {NsPerOp: 150.4, AllocsPerOp: 1, BytesPerOp: 48},
	"schedule_step_1m_pending": {NsPerOp: 472.8, AllocsPerOp: 1, BytesPerOp: 47},
	"run_constant_200k":        {NsPerOp: 129.28e6, SimPktsPerSec: 1_547_001},
}

// Entry is one benchmark measurement.
type Entry struct {
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	SimPktsPerSec float64 `json:"sim_pkts_per_sec,omitempty"`
}

// Record pairs a current measurement with its pre-rewrite baseline.
type Record struct {
	Name     string  `json:"name"`
	Current  Entry   `json:"current"`
	Baseline Entry   `json:"baseline"`
	Speedup  float64 `json:"speedup"`
}

const pendingEvents = 1_000_000

func fill(s *vtime.Scheduler, n int) {
	nop := func() {}
	r := vtime.NewRand(1)
	for i := 0; i < n; i++ {
		s.At(vtime.Time(1+r.Intn(1<<30)), nop)
	}
}

func benchSchedule(b *testing.B) {
	s := vtime.NewScheduler()
	fill(s, pendingEvents)
	nop := func() {}
	r := vtime.NewRand(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+vtime.Time(1+r.Intn(1<<30)), nop)
		if s.Pending() >= 2*pendingEvents {
			b.StopTimer()
			for s.Pending() > pendingEvents {
				s.Step()
			}
			b.StartTimer()
		}
	}
}

func benchCancel(b *testing.B) {
	s := vtime.NewScheduler()
	fill(s, pendingEvents)
	nop := func() {}
	r := vtime.NewRand(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := s.At(s.Now()+vtime.Time(1+r.Intn(1<<30)), nop)
		if !s.Cancel(id) {
			b.Fatal("cancel failed")
		}
	}
}

func benchScheduleStep(b *testing.B) {
	s := vtime.NewScheduler()
	fill(s, pendingEvents)
	var tick func()
	tick = func() { s.At(s.Now()+1, tick) }
	s.At(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

const runConstantPackets = 200_000

func benchRunConstant(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunConstant(bench.ConstantRun{
			Spec: bench.WireCAPB(256, 100), Packets: runConstantPackets, X: 0, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Sent != runConstantPackets {
			b.Fatalf("sent %d packets, want %d", res.Sent, runConstantPackets)
		}
	}
}

func measure(name string, fn func(*testing.B)) Record {
	r := testing.Benchmark(fn)
	cur := Entry{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if name == "run_constant_200k" {
		cur.SimPktsPerSec = runConstantPackets / (cur.NsPerOp / 1e9)
	}
	base := baseline[name]
	rec := Record{Name: name, Current: cur, Baseline: base}
	if cur.NsPerOp > 0 && base.NsPerOp > 0 {
		rec.Speedup = base.NsPerOp / cur.NsPerOp
	}
	return rec
}

// benchDoc is the file layout of BENCH_vtime.json.
type benchDoc struct {
	Note    string   `json:"note"`
	Results []Record `json:"results"`
}

// check compares fresh measurements against the committed file without
// touching it. Allocations are deterministic, so any increase fails;
// ns/op is wall-clock and noisy, so it only fails beyond tolerance×.
func check(records []Record, committedPath string, tolerance float64) int {
	data, err := os.ReadFile(committedPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vtime-bench:", err)
		return 2
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "vtime-bench: parsing %s: %v\n", committedPath, err)
		return 2
	}
	committed := make(map[string]Entry, len(doc.Results))
	for _, r := range doc.Results {
		committed[r.Name] = r.Current
	}
	status := 0
	for _, r := range records {
		want, ok := committed[r.Name]
		if !ok {
			fmt.Printf("FAIL %-26s not in %s (regenerate with -o)\n", r.Name, committedPath)
			status = 1
			continue
		}
		switch {
		case r.Current.AllocsPerOp > want.AllocsPerOp:
			fmt.Printf("FAIL %-26s %d allocs/op, committed %d\n",
				r.Name, r.Current.AllocsPerOp, want.AllocsPerOp)
			status = 1
		case want.NsPerOp > 0 && r.Current.NsPerOp > want.NsPerOp*tolerance:
			fmt.Printf("FAIL %-26s %.1f ns/op exceeds committed %.1f x tolerance %.1f\n",
				r.Name, r.Current.NsPerOp, want.NsPerOp, tolerance)
			status = 1
		default:
			fmt.Printf("ok   %-26s %12.1f ns/op  %3d allocs/op  (committed %12.1f, %d)\n",
				r.Name, r.Current.NsPerOp, r.Current.AllocsPerOp, want.NsPerOp, want.AllocsPerOp)
		}
	}
	if status == 1 {
		fmt.Printf("If intentional, regenerate with `go run ./cmd/vtime-bench -o %s` and commit the diff.\n", committedPath)
	}
	return status
}

func main() {
	out := flag.String("o", "BENCH_vtime.json", "output file (- for stdout)")
	checkMode := flag.Bool("check", false, "compare against the committed file instead of overwriting it")
	checkPath := flag.String("baseline", "BENCH_vtime.json", "committed file -check compares against")
	tolerance := flag.Float64("tolerance", 4.0, "allowed ns/op slowdown factor in -check mode")
	flag.Parse()

	records := []Record{
		measure("schedule_1m_pending", benchSchedule),
		measure("cancel_1m_pending", benchCancel),
		measure("schedule_step_1m_pending", benchScheduleStep),
		measure("run_constant_200k", benchRunConstant),
	}
	if *checkMode {
		os.Exit(check(records, *checkPath, *tolerance))
	}
	doc := benchDoc{
		Note:    "generated by cmd/vtime-bench; baseline = container/heap scheduler before the allocation-free rewrite",
		Results: records,
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vtime-bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vtime-bench:", err)
		os.Exit(1)
	}
	for _, r := range records {
		fmt.Printf("%-26s %12.1f ns/op  %3d allocs/op  (baseline %12.1f ns/op, %.2fx)\n",
			r.Name, r.Current.NsPerOp, r.Current.AllocsPerOp, r.Baseline.NsPerOp, r.Speedup)
	}
}
