// Command vtime-bench measures the simulation engine's hot paths and
// writes the results to BENCH_vtime.json: scheduler microbenchmarks
// (schedule, cancel, and the self-rescheduling schedule+step cycle, each
// against one million pending events), an end-to-end wall-clock run of
// bench.RunConstant, and the pdes_scaling family: the eight-host fleet
// workload under the parallel discrete-event executive at 1/2/4/8 time
// domains (plus a chaos variant), whose entries carry the run digest and
// the measuring machine's GOMAXPROCS. Scheduler entries carry the
// corresponding measurement taken at the container/heap-based scheduler
// this engine replaced, so the file documents the before/after directly.
//
// Usage:
//
//	vtime-bench [-o BENCH_vtime.json]
//	vtime-bench -check [-baseline BENCH_vtime.json] [-tolerance 4.0]
//
// -check is the CI mode: instead of overwriting the committed file it
// re-measures and compares against it read-only — allocs/op must not
// exceed the committed value at all, and ns/op must stay within the
// tolerance factor (wall-clock-safe: only order-of-magnitude slowdowns
// fail at the default 4.0x). Exit status 1 on regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/faults"
	"repro/internal/vtime"
)

// baseline holds the same benchmarks measured at the pre-rewrite revision
// (container/heap scheduler, per-event closure allocation), on the same
// class of host this tool runs on. They are retained here so regenerating
// the JSON keeps the before/after comparison.
var baseline = map[string]Entry{
	"schedule_1m_pending":      {NsPerOp: 347.5, AllocsPerOp: 1, BytesPerOp: 57},
	"cancel_1m_pending":        {NsPerOp: 150.4, AllocsPerOp: 1, BytesPerOp: 48},
	"schedule_step_1m_pending": {NsPerOp: 472.8, AllocsPerOp: 1, BytesPerOp: 47},
	"run_constant_200k":        {NsPerOp: 129.28e6, SimPktsPerSec: 1_547_001},
}

// Entry is one benchmark measurement.
type Entry struct {
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	SimPktsPerSec float64 `json:"sim_pkts_per_sec,omitempty"`
	// Digest is the run's deterministic report digest (pdes_scaling
	// entries only). Unlike wall-clock numbers it is machine-independent,
	// so -check compares it exactly — both against the committed value
	// and across domain counts.
	Digest string `json:"digest,omitempty"`
	// GoMaxProcs records the parallelism available when the entry was
	// measured (pdes_scaling entries only): wall-clock scaling numbers
	// are only meaningful relative to it, and the -check speedup gate is
	// waived below 4 usable CPUs.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// Tolerance, when > 0, overrides the global -tolerance factor for
	// this entry in -check mode. Families whose wall-clock noise differs
	// structurally (tight microbench loops vs goroutine fan-out) commit
	// their own window instead of sharing one fixed 4x band.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// Record pairs a current measurement with its pre-rewrite baseline.
type Record struct {
	Name     string  `json:"name"`
	Current  Entry   `json:"current"`
	Baseline Entry   `json:"baseline"`
	Speedup  float64 `json:"speedup"`
}

const pendingEvents = 1_000_000

func fill(s *vtime.Scheduler, n int) {
	nop := func() {}
	r := vtime.NewRand(1)
	for i := 0; i < n; i++ {
		s.At(vtime.Time(1+r.Intn(1<<30)), nop)
	}
}

func benchSchedule(b *testing.B) {
	s := vtime.NewScheduler()
	fill(s, pendingEvents)
	nop := func() {}
	r := vtime.NewRand(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+vtime.Time(1+r.Intn(1<<30)), nop)
		if s.Pending() >= 2*pendingEvents {
			b.StopTimer()
			for s.Pending() > pendingEvents {
				s.Step()
			}
			b.StartTimer()
		}
	}
}

func benchCancel(b *testing.B) {
	s := vtime.NewScheduler()
	fill(s, pendingEvents)
	nop := func() {}
	r := vtime.NewRand(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := s.At(s.Now()+vtime.Time(1+r.Intn(1<<30)), nop)
		if !s.Cancel(id) {
			b.Fatal("cancel failed")
		}
	}
}

func benchScheduleStep(b *testing.B) {
	s := vtime.NewScheduler()
	fill(s, pendingEvents)
	var tick func()
	tick = func() { s.At(s.Now()+1, tick) }
	s.At(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

const runConstantPackets = 200_000

func benchRunConstant(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunConstant(bench.ConstantRun{
			Spec: bench.WireCAPB(256, 100), Packets: runConstantPackets, X: 0, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Sent != runConstantPackets {
			b.Fatalf("sent %d packets, want %d", res.Sent, runConstantPackets)
		}
	}
}

// ---- pdes_scaling: the parallel executive over the fleet workload ----
//
// Eight capture hosts, each a RunConstant-class stack (constant-rate
// traffic into a WireCAP engine with a loaded pkt_handler), reporting
// milestones to a collector over the cross-domain mailbox fabric; the
// chaos variant adds a per-host queue hang plus a consumer stall so the
// recovery machinery and its cross-domain action reports are on the
// measured path. The same fleet runs at every domain count — only
// placement changes — so the digests must match across entries, which
// -check enforces alongside the committed values.

const fleetHosts = 8

// pdesTolerance is the committed -check window for the pdes_scaling
// family (see Entry.Tolerance).
const pdesTolerance = 8.0

func fleetRun(domains int, chaos bool) bench.FleetRun {
	cfg := bench.FleetRun{
		Spec: bench.WireCAPA(64, 32, 60), Hosts: fleetHosts, Queues: 2, X: 300,
		Packets: 20_000, PacketsPerSec: 60_000, Seed: 41,
		MilestoneEvery: 1000, Domains: domains,
	}
	if chaos {
		cfg.FaultSeed = 97
		cfg.Faults = faults.Schedule{
			{At: 5 * vtime.Millisecond, Kind: faults.QueueHang, Queue: 1},
			{At: 8 * vtime.Millisecond, Dur: 20 * vtime.Millisecond, Kind: faults.HandlerStall, Queue: 0},
		}
	}
	return cfg
}

// measurePDES benchmarks one fleet configuration and stamps the entry
// with the run's digest and the measuring machine's GOMAXPROCS. The
// fleet scenario name is constant per family — never derived from the
// entry name — because it is embedded in every report the digest
// covers; encoding the domain count there would make the cross-entry
// digest comparison fail by construction.
func measurePDES(name string, domains int, chaos bool) Record {
	scenario := "pdes_fleet_constant"
	if chaos {
		scenario = "pdes_fleet_chaos"
	}
	var digest string
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := bench.RunFleet(scenario, fleetRun(domains, chaos))
			if err != nil {
				b.Fatal(err)
			}
			digest = res.Report.Digest()
		}
	})
	cur := Entry{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Digest:      digest,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		// Goroutine fan-out makes these entries the noisiest family in
		// the file; their exact regression signal is the digest.
		Tolerance: pdesTolerance,
	}
	cur.SimPktsPerSec = float64(fleetHosts) * 20_000 / (cur.NsPerOp / 1e9)
	return Record{Name: name, Current: cur}
}

func pdesRecords() []Record {
	records := []Record{
		measurePDES("pdes_scaling_constant_d1", 1, false),
		measurePDES("pdes_scaling_constant_d2", 2, false),
		measurePDES("pdes_scaling_constant_d4", 4, false),
		measurePDES("pdes_scaling_constant_d8", 8, false),
		measurePDES("pdes_scaling_chaos_d1", 1, true),
		measurePDES("pdes_scaling_chaos_d4", 4, true),
	}
	return records
}

func measure(name string, fn func(*testing.B)) Record {
	r := testing.Benchmark(fn)
	cur := Entry{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if name == "run_constant_200k" {
		cur.SimPktsPerSec = runConstantPackets / (cur.NsPerOp / 1e9)
	}
	base := baseline[name]
	rec := Record{Name: name, Current: cur, Baseline: base}
	if cur.NsPerOp > 0 && base.NsPerOp > 0 {
		rec.Speedup = base.NsPerOp / cur.NsPerOp
	}
	return rec
}

// benchDoc is the file layout of BENCH_vtime.json.
type benchDoc struct {
	Note    string   `json:"note"`
	Results []Record `json:"results"`
}

// check compares fresh measurements against the committed file without
// touching it. Allocations are deterministic, so any increase fails;
// ns/op is wall-clock and noisy, so it only fails beyond tolerance×.
func check(records []Record, committedPath string, tolerance float64) int {
	data, err := os.ReadFile(committedPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vtime-bench:", err)
		return 2
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "vtime-bench: parsing %s: %v\n", committedPath, err)
		return 2
	}
	committed := make(map[string]Entry, len(doc.Results))
	for _, r := range doc.Results {
		committed[r.Name] = r.Current
	}
	status := 0
	for _, r := range records {
		want, ok := committed[r.Name]
		if !ok {
			fmt.Printf("FAIL %-26s not in %s (regenerate with -o)\n", r.Name, committedPath)
			status = 1
			continue
		}
		// pdes_scaling entries run real goroutine fan-out, so their
		// allocation counts wobble with scheduling; their exact check is
		// the digest, which covers every observable of the run.
		pdes := strings.HasPrefix(r.Name, "pdes_")
		switch {
		case !pdes && r.Current.AllocsPerOp > allocBudget(want.AllocsPerOp):
			fmt.Printf("FAIL %-26s %d allocs/op, committed %d\n",
				r.Name, r.Current.AllocsPerOp, want.AllocsPerOp)
			status = 1
		case want.Digest != "" && r.Current.Digest != want.Digest:
			fmt.Printf("FAIL %-26s digest %s, committed %s (determinism regression)\n",
				r.Name, r.Current.Digest, want.Digest)
			status = 1
		case want.NsPerOp > 0 && r.Current.NsPerOp > want.NsPerOp*tol(want, tolerance):
			fmt.Printf("FAIL %-26s %.1f ns/op exceeds committed %.1f x tolerance %.1f\n",
				r.Name, r.Current.NsPerOp, want.NsPerOp, tol(want, tolerance))
			status = 1
		default:
			fmt.Printf("ok   %-26s %12.1f ns/op  %3d allocs/op  (committed %12.1f, %d)\n",
				r.Name, r.Current.NsPerOp, r.Current.AllocsPerOp, want.NsPerOp, want.AllocsPerOp)
		}
	}
	if s := checkPDES(records); s > status {
		status = s
	}
	if s := checkFilterPath(records); s > status {
		status = s
	}
	if status == 1 {
		fmt.Printf("If intentional, regenerate with `go run ./cmd/vtime-bench -o %s` and commit the diff.\n", committedPath)
	}
	return status
}

// tol returns the entry's committed tolerance window, falling back to
// the global -tolerance flag.
func tol(e Entry, global float64) float64 {
	if e.Tolerance > 0 {
		return e.Tolerance
	}
	return global
}

// allocBudget is the allocation ceiling for a committed count: exact
// for zero-alloc entries (the hot-path guarantee), plus 1% headroom
// (minimum 2) otherwise — large runs jitter by a few allocations with
// runtime internals (stack growth, map rehash timing) that are not
// regressions.
func allocBudget(committed int64) int64 {
	if committed == 0 {
		return 0
	}
	slack := committed / 100
	if slack < 2 {
		slack = 2
	}
	return committed + slack
}

// checkPDES enforces the parallel-executive properties across the fresh
// pdes_scaling measurements themselves:
//
//   - Placement invariance, unconditionally: every domain count of a
//     family must produce the identical digest.
//   - Scaling, only where physics allows: with >= 4 usable CPUs the
//     4-domain constant fleet must run >= 2x faster than the 1-domain
//     one. On smaller machines the gate is waived (and says so) — the
//     digests still pin that the parallel path executed correctly.
func checkPDES(records []Record) int {
	byName := make(map[string]Entry, len(records))
	for _, r := range records {
		byName[r.Name] = r.Current
	}
	status := 0
	for _, family := range [][]string{
		{"pdes_scaling_constant_d1", "pdes_scaling_constant_d2", "pdes_scaling_constant_d4", "pdes_scaling_constant_d8"},
		{"pdes_scaling_chaos_d1", "pdes_scaling_chaos_d4"},
	} {
		ref, ok := byName[family[0]]
		if !ok {
			continue
		}
		for _, name := range family[1:] {
			e, ok := byName[name]
			if !ok {
				continue
			}
			if e.Digest != ref.Digest {
				fmt.Printf("FAIL %-26s digest %s != %s's %s (placement leaked into output)\n",
					name, e.Digest, family[0], ref.Digest)
				status = 1
			}
		}
	}
	d1, ok1 := byName["pdes_scaling_constant_d1"]
	d4, ok4 := byName["pdes_scaling_constant_d4"]
	if ok1 && ok4 {
		speedup := d1.NsPerOp / d4.NsPerOp
		switch {
		case runtime.NumCPU() < 4:
			fmt.Printf("skip pdes speedup gate: %d CPU(s) available, need >= 4 (measured %.2fx at 4 domains)\n",
				runtime.NumCPU(), speedup)
		case speedup < 2.0:
			fmt.Printf("FAIL pdes_scaling_constant_d4 speedup %.2fx over d1, want >= 2.0x on %d CPUs\n",
				speedup, runtime.NumCPU())
			status = 1
		default:
			fmt.Printf("ok   pdes speedup gate: %.2fx at 4 domains on %d CPUs\n", speedup, runtime.NumCPU())
		}
	}
	return status
}

func main() {
	out := flag.String("o", "BENCH_vtime.json", "output file (- for stdout)")
	checkMode := flag.Bool("check", false, "compare against the committed file instead of overwriting it")
	checkPath := flag.String("baseline", "BENCH_vtime.json", "committed file -check compares against")
	tolerance := flag.Float64("tolerance", 4.0, "allowed ns/op slowdown factor in -check mode")
	flag.Parse()

	records := []Record{
		measure("schedule_1m_pending", benchSchedule),
		measure("cancel_1m_pending", benchCancel),
		measure("schedule_step_1m_pending", benchScheduleStep),
		measure("run_constant_200k", benchRunConstant),
	}
	records = append(records, filterPathRecords()...)
	records = append(records, pdesRecords()...)
	if *checkMode {
		os.Exit(check(records, *checkPath, *tolerance))
	}
	doc := benchDoc{
		Note:    "generated by cmd/vtime-bench; baseline = container/heap scheduler before the allocation-free rewrite",
		Results: records,
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vtime-bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vtime-bench:", err)
		os.Exit(1)
	}
	for _, r := range records {
		fmt.Printf("%-26s %12.1f ns/op  %3d allocs/op  (baseline %12.1f ns/op, %.2fx)\n",
			r.Name, r.Current.NsPerOp, r.Current.AllocsPerOp, r.Baseline.NsPerOp, r.Speedup)
	}
}
