package main

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/vtime"
)

// maxCells bounds the dashboard width: when the run spans more
// intervals than this, adjacent intervals coarsen into one cell.
const maxCells = 72

// levels maps a cell's throughput (relative to the busiest cell of any
// host lane) to a glyph; drops and recovery actions overlay it.
const levels = " .:-=+*#%@"

// cell is one rendered dashboard column of one lane.
type cell struct {
	recv  int64 // packets captured (host lanes) or aggregated (agg lane)
	drops int64 // fleet-cause drops charged to the lane's host
	acted bool  // a recovery/control action touched the host
}

// writeDashboard renders the fleet dashboard. Everything derives from
// the record — health lanes for throughput, the forensics ledger for
// drops, the action log for annotations — so the output is a pure
// function of the record bytes.
func writeDashboard(w io.Writer, rec *obs.Record, iv vtime.Time) error {
	intervals := int(rec.End/iv) + 1
	per := (intervals + maxCells - 1) / maxCells // intervals per cell
	cells := (intervals + per - 1) / per

	// Host lanes come from the health series ("hostN" lanes, "received"
	// deltas); the aggregator lane uses "aggregated".
	type lane struct {
		name  string
		host  int // -1 for the aggregator
		cells []cell
	}
	var lanes []*lane
	byHost := map[int]*lane{}
	for i := range rec.Health {
		hl := &rec.Health[i]
		var host int
		var counter string
		switch {
		case hl.Lane == "agg":
			host, counter = -1, "aggregated"
		case strings.HasPrefix(hl.Lane, "host"):
			if _, err := fmt.Sscanf(hl.Lane, "host%d", &host); err != nil {
				continue
			}
			counter = "received"
		default:
			continue // the summed fleet lane is not a dashboard row
		}
		l := &lane{name: hl.Lane, host: host, cells: make([]cell, cells)}
		for di := range hl.Deltas {
			d := &hl.Deltas[di]
			if d.Index/per >= cells {
				continue
			}
			l.cells[d.Index/per].recv += d.Value(counter)
		}
		lanes = append(lanes, l)
		byHost[host] = l
	}
	sort.Slice(lanes, func(i, j int) bool { return lanes[i].host < lanes[j].host })

	// Overlay the forensics ledger (drops by host x interval) and the
	// action log (control-plane events by host x interval).
	led := rec.FleetLedger(iv)
	worst := -1 // cell index with the most fleet-cause drops
	worstDrops := int64(0)
	perCell := make([]int64, cells)
	for _, e := range led {
		ci := e.Interval / per
		if ci >= cells {
			continue
		}
		if l := byHost[e.Host]; l != nil {
			l.cells[ci].drops += int64(e.Count)
		}
		perCell[ci] += int64(e.Count)
	}
	for ci, n := range perCell {
		if n > worstDrops {
			worstDrops, worst = n, ci
		}
	}
	for _, a := range rec.Actions {
		ci := int(a.At/iv) / per
		if ci >= cells {
			continue
		}
		if l := byHost[a.NIC]; l != nil && strings.HasPrefix(a.Kind, "fleet_") {
			l.cells[ci].acted = true
		}
	}

	var max int64 = 1
	for _, l := range lanes {
		if l.host < 0 {
			continue
		}
		for _, c := range l.cells {
			if c.recv > max {
				max = c.recv
			}
		}
	}

	bw := &errw{w: w}
	bw.printf("== fleet dashboard: %s ==\n", rec.Scenario)
	bw.printf("end %dns, %d intervals of %dns (%d per column)\n", rec.End, intervals, iv, per)
	bw.printf("legend: glyph = captured/aggregated per column (max %d), x = drops, ! = recovery action\n\n", max)
	for _, l := range lanes {
		bw.printf("%-7s |", l.name)
		for _, c := range l.cells {
			switch {
			case c.acted:
				bw.printf("!")
			case c.drops > 0:
				bw.printf("x")
			default:
				g := int(c.recv * int64(len(levels)-1) / max)
				if g >= len(levels) {
					g = len(levels) - 1
				}
				bw.printf("%c", levels[g])
			}
		}
		bw.printf("|\n")
	}

	bw.printf("\n-- worst interval --\n")
	if worst < 0 {
		bw.printf("(no drops anywhere: clean run)\n")
	} else {
		lo := vtime.Time(worst*per) * iv
		hi := vtime.Time((worst+1)*per) * iv
		bw.printf("column %d [%dns, %dns): %d packets dropped\n", worst, lo, hi, worstDrops)
		for _, e := range led {
			if e.Interval/per == worst {
				bw.printf("  host %d %-24s interval %-5d %d\n", e.Host, e.Cause, e.Interval, e.Count)
			}
		}
	}

	bw.printf("\n-- recovery actions --\n")
	n := 0
	for _, a := range rec.Actions {
		if !strings.HasPrefix(a.Kind, "fleet_") {
			continue
		}
		n++
		bw.printf("%12dns  %-18s host=%d arg=%d\n", a.At, a.Kind, a.NIC, a.Arg)
	}
	if n == 0 {
		bw.printf("(none)\n")
	}

	bw.printf("\n-- totals --\n")
	causes := make([]string, 0, len(rec.DropTotals))
	for c := range rec.DropTotals {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	for _, c := range causes {
		bw.printf("%-24s %d\n", c, rec.DropTotals[c])
	}
	bw.printf("journeys %d (fleet events %d)\n", len(rec.Journeys), len(rec.FleetEvents))
	return bw.err
}

// errw is the usual sticky-error printf writer.
type errw struct {
	w   io.Writer
	err error
}

func (e *errw) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
