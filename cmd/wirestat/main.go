// Command wirestat renders a fleet flight-recorder export (the Chrome
// trace JSON written by experiments -trace or fleet.Run) as a
// deterministic text dashboard: one activity lane per host, recovery
// actions as annotated events, and the worst interval highlighted with
// its per-host drop-cause breakdown.
//
// Usage:
//
//	wirestat -r fleet-trace.json              # the dashboard
//	wirestat -r fleet-trace.json -journeys    # end-to-end packet journeys
//	wirestat -r fleet-trace.json -ledger      # host x cause x interval ledger
//	wirestat -r fleet-trace.json -health      # raw health time-series
//
// Every output is a pure function of the record: byte-identical across
// -domains settings, machines, and runs — ci-gate relies on that.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/vtime"
)

func main() {
	file := flag.String("r", "", "flight-recorder export to read (required)")
	journeys := flag.Bool("journeys", false, "print the end-to-end journey dump instead of the dashboard")
	ledger := flag.Bool("ledger", false, "print the host x cause x interval forensics ledger")
	health := flag.Bool("health", false, "print the raw per-lane health time-series")
	interval := flag.Int64("interval", 0, "ledger/dashboard interval in virtual ns (default: the record's health interval, else 250us)")
	flag.Parse()

	if *file == "" {
		fmt.Fprintln(os.Stderr, "wirestat: -r is required")
		os.Exit(2)
	}
	f, err := os.Open(*file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirestat:", err)
		os.Exit(1)
	}
	rec, err := obs.ReadRecord(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirestat:", err)
		os.Exit(1)
	}

	iv := vtime.Time(*interval)
	if iv <= 0 {
		iv = recInterval(&rec)
	}
	switch {
	case *journeys:
		err = rec.WriteJourneys(os.Stdout)
	case *ledger:
		err = rec.WriteFleetLedger(os.Stdout, iv)
	case *health:
		err = obs.WriteHealth(os.Stdout, rec.Health)
	default:
		err = writeDashboard(os.Stdout, &rec, iv)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirestat:", err)
		os.Exit(1)
	}
}

// recInterval is the record's own health sampling interval, falling
// back to the ledger default when the record carries no health series.
func recInterval(rec *obs.Record) vtime.Time {
	for _, l := range rec.Health {
		if l.IntervalNs > 0 {
			return l.IntervalNs
		}
	}
	return 250 * vtime.Microsecond
}
