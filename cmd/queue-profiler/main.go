// Command queue-profiler is the paper's Experiment 1 tool: it captures
// packets from every receive queue of a simulated NIC and counts packets
// per 10 ms bin per queue, revealing RSS load imbalance (Figure 3).
//
// Usage:
//
//	queue-profiler [-queues n] [-seconds s] [-seed n] [-pcap file] [-csv]
//
// With -csv it emits the raw time series (bin start in seconds, one
// column per queue), which plots directly as Figure 3.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/app"
	"repro/internal/engines"
	"repro/internal/nic"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func main() {
	queues := flag.Int("queues", 6, "receive queues")
	seconds := flag.Float64("seconds", 32, "trace duration")
	seed := flag.Uint64("seed", 2014, "workload seed")
	pcapPath := flag.String("pcap", "", "replay this pcap file instead of the synthetic border trace")
	csv := flag.Bool("csv", false, "emit the raw per-bin time series as CSV")
	flag.Parse()

	sched := vtime.NewScheduler()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: *queues, RingSize: 1024, Promiscuous: true})
	prof := app.NewQueueProfiler(*queues)
	engines.NewDNA(sched, n, engines.DefaultCosts(), prof)

	var src trace.Source
	if *pcapPath != "" {
		f, err := os.Open(*pcapPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "queue-profiler:", err)
			os.Exit(1)
		}
		defer f.Close()
		rd, err := trace.NewReader(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "queue-profiler:", err)
			os.Exit(1)
		}
		src = trace.NewPcapSource(rd)
	} else {
		src = trace.NewBorder(trace.BorderConfig{
			Queues:   *queues,
			Duration: vtime.Time(*seconds * float64(vtime.Second)),
			Seed:     *seed,
		})
	}
	st := trace.Drive(sched, n, src, nil)
	sched.Run()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *csv {
		fmt.Fprint(w, "bin_start_s")
		for q := 0; q < *queues; q++ {
			fmt.Fprintf(w, ",queue%d", q)
		}
		fmt.Fprintln(w)
		bins := 0
		for q := 0; q < *queues; q++ {
			if len(prof.Series(q)) > bins {
				bins = len(prof.Series(q))
			}
		}
		for b := 0; b < bins; b++ {
			fmt.Fprintf(w, "%.2f", float64(b)*0.01)
			for q := 0; q < *queues; q++ {
				v := uint64(0)
				if s := prof.Series(q); b < len(s) {
					v = s[b]
				}
				fmt.Fprintf(w, ",%d", v)
			}
			fmt.Fprintln(w)
		}
		return
	}
	fmt.Fprintf(w, "replayed %d packets over %v\n\n", st.Sent, st.Last)
	fmt.Fprintf(w, "%-6s %12s %12s %16s\n", "queue", "packets", "mean p/s", "peak pkts/10ms")
	for q := 0; q < *queues; q++ {
		total := prof.Total(q)
		fmt.Fprintf(w, "%-6d %12d %12.0f %16d\n",
			q, total, float64(total)/st.Last.Seconds(), prof.Peak(q))
	}
}
