// Command wiregen synthesizes workload traces and writes them as pcap
// files, so experiments can be replayed from disk (queue-profiler -pcap,
// wirecap.Sim.ReplayPcapFile) or inspected with standard tools.
//
// Usage:
//
//	wiregen -out trace.pcap [-kind border|rate] [-seconds s] [-packets n]
//	        [-frame bytes] [-queues n] [-seed n]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/vtime"
)

func main() {
	out := flag.String("out", "", "output pcap path (required)")
	kind := flag.String("kind", "border", "workload: border (Figure 3 trace) or rate (constant wire-rate)")
	seconds := flag.Float64("seconds", 4, "border trace duration")
	packets := flag.Uint64("packets", 100000, "packet count for -kind rate")
	frame := flag.Int("frame", 60, "frame bytes for -kind rate")
	queues := flag.Int("queues", 6, "queue count the workload is shaped for")
	seed := flag.Uint64("seed", 2014, "workload seed")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "wiregen: -out is required")
		os.Exit(2)
	}
	var src trace.Source
	switch *kind {
	case "border":
		src = trace.NewBorder(trace.BorderConfig{
			Queues:   *queues,
			Duration: vtime.Time(*seconds * float64(vtime.Second)),
			Seed:     *seed,
		})
	case "rate":
		src = trace.NewConstantRate(trace.ConstantRateConfig{
			Packets:  *packets,
			FrameLen: *frame,
			Queues:   *queues,
			Seed:     *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "wiregen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wiregen:", err)
		os.Exit(1)
	}
	w, err := trace.NewWriter(f, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wiregen:", err)
		os.Exit(1)
	}
	for {
		frame, ts, ok := src.Next()
		if !ok {
			break
		}
		if err := w.WritePacket(ts, frame); err != nil {
			fmt.Fprintln(os.Stderr, "wiregen:", err)
			os.Exit(1)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "wiregen:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "wiregen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d packets to %s\n", w.Count(), *out)
}
