// Command wirelint runs the repository's static-analysis suite
// (internal/lint) over the whole module and reports every live finding
// plus a summary of allowlisted exceptions with their reasons.
//
// Usage:
//
//	wirelint [-root dir] [-rules walltime,maporder,...] [-only path] [-noallow] [-json]
//
// -only restricts the report to findings and allowlisted exceptions in
// files under the given module-relative path prefix. -noallow treats
// allowlisted exceptions in scope as failures — the self-lint mode: CI
// runs `wirelint -only internal/lint -noallow` so the analyzers
// themselves stay finding-free without a single directive.
//
// The -json output is byte-deterministic for a given tree: findings
// and the allow inventory are sorted by position, and map keys encode
// in sorted order, so two runs produce identical bytes (pinned by a
// regression test).
//
// Exit status: 0 when clean, 1 when findings are live (or, with
// -noallow, exceptions are allowlisted in scope), 2 on load or
// analysis errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wirelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "module root (default: nearest parent directory containing go.mod)")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	only := fs.String("only", "", "restrict the report to files under this module-relative path prefix")
	noAllow := fs.Bool("noallow", false, "treat allowlisted exceptions in scope as failures (self-lint mode)")
	asJSON := fs.Bool("json", false, "emit findings and summary as JSON")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(stderr, "wirelint: %v\n", err)
			return 2
		}
	}

	azs, err := selectRules(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "wirelint: %v\n", err)
		return 2
	}

	mod, err := lint.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(stderr, "wirelint: %v\n", err)
		return 2
	}
	findings, sum, err := lint.Run(mod, azs)
	if err != nil {
		fmt.Fprintf(stderr, "wirelint: %v\n", err)
		return 2
	}
	if *only != "" {
		findings, sum = restrict(findings, sum, *only)
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Findings []lint.Finding `json:"findings"`
			Summary  lint.Summary   `json:"summary"`
		}{findings, sum}); err != nil {
			fmt.Fprintf(stderr, "wirelint: %v\n", err)
			return 2
		}
	} else {
		printReport(stdout, findings, sum)
	}
	if *noAllow && sum.Allowed > 0 {
		fmt.Fprintf(stderr, "wirelint: %d allowlisted exceptions in scope with -noallow\n", sum.Allowed)
		return 1
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// restrict narrows findings and the allow inventory to files under the
// given module-relative prefix, recomputing the summary counts so the
// report stays self-consistent.
func restrict(findings []lint.Finding, sum lint.Summary, prefix string) ([]lint.Finding, lint.Summary) {
	prefix = strings.TrimSuffix(filepath.ToSlash(prefix), "/")
	in := func(f lint.Finding) bool {
		file := filepath.ToSlash(f.File)
		return file == prefix || strings.HasPrefix(file, prefix+"/")
	}
	var live []lint.Finding
	for _, f := range findings {
		if in(f) {
			live = append(live, f)
		}
	}
	out := lint.Summary{
		Packages:      sum.Packages,
		ByRule:        make(map[string]int),
		AllowedByRule: make(map[string]int),
	}
	for _, f := range live {
		out.ByRule[f.Rule]++
	}
	for _, f := range sum.AllowedList {
		if in(f) {
			out.AllowedList = append(out.AllowedList, f)
			out.AllowedByRule[f.Rule]++
		}
	}
	out.Findings = len(live)
	out.Allowed = len(out.AllowedList)
	return live, out
}

func printReport(out io.Writer, findings []lint.Finding, sum lint.Summary) {
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	fmt.Fprintf(out, "wirelint: %d packages, %d findings, %d allowlisted\n",
		sum.Packages, sum.Findings, sum.Allowed)
	for _, rule := range sortedKeys(sum.ByRule) {
		fmt.Fprintf(out, "  %-14s %d\n", rule, sum.ByRule[rule])
	}
	if sum.Allowed > 0 {
		fmt.Fprintln(out, "allowlisted exceptions:")
		for _, f := range sum.AllowedList {
			fmt.Fprintf(out, "  %s:%d [%s] %s\n", f.File, f.Line, f.Rule, f.Reason)
		}
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func selectRules(csv string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if csv == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*lint.Analyzer
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			have := make([]string, len(all))
			for i, a := range all {
				have[i] = a.Name
			}
			return nil, fmt.Errorf("unknown rule %q (have: %s)", name, strings.Join(have, ", "))
		}
		picked = append(picked, a)
	}
	return picked, nil
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found in any parent of the working directory (use -root)")
		}
		dir = parent
	}
}
