// Command wirelint runs the repository's static-analysis suite
// (internal/lint) over the whole module and reports every live finding
// plus a summary of allowlisted exceptions with their reasons.
//
// Usage:
//
//	wirelint [-root dir] [-rules walltime,maporder,...] [-json]
//
// Exit status: 0 when clean, 1 when findings are live, 2 on load or
// analysis errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("wirelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "module root (default: nearest parent directory containing go.mod)")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings and summary as JSON")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(stderr, "wirelint: %v\n", err)
			return 2
		}
	}

	azs, err := selectRules(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "wirelint: %v\n", err)
		return 2
	}

	mod, err := lint.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(stderr, "wirelint: %v\n", err)
		return 2
	}
	findings, sum, err := lint.Run(mod, azs)
	if err != nil {
		fmt.Fprintf(stderr, "wirelint: %v\n", err)
		return 2
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Findings []lint.Finding `json:"findings"`
			Summary  lint.Summary   `json:"summary"`
		}{findings, sum}); err != nil {
			fmt.Fprintf(stderr, "wirelint: %v\n", err)
			return 2
		}
	} else {
		printReport(stdout, findings, sum)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

func printReport(out *os.File, findings []lint.Finding, sum lint.Summary) {
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	fmt.Fprintf(out, "wirelint: %d packages, %d findings, %d allowlisted\n",
		sum.Packages, sum.Findings, sum.Allowed)
	for _, rule := range sortedKeys(sum.ByRule) {
		fmt.Fprintf(out, "  %-14s %d\n", rule, sum.ByRule[rule])
	}
	if sum.Allowed > 0 {
		fmt.Fprintln(out, "allowlisted exceptions:")
		for _, f := range sum.AllowedList {
			fmt.Fprintf(out, "  %s:%d [%s] %s\n", f.File, f.Line, f.Rule, f.Reason)
		}
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func selectRules(csv string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if csv == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*lint.Analyzer
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			have := make([]string, len(all))
			for i, a := range all {
				have[i] = a.Name
			}
			return nil, fmt.Errorf("unknown rule %q (have: %s)", name, strings.Join(have, ", "))
		}
		picked = append(picked, a)
	}
	return picked, nil
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found in any parent of the working directory (use -root)")
		}
		dir = parent
	}
}
