package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestJSONByteDeterministic pins the -json contract: two runs over the
// same tree produce identical bytes. Findings and the allow inventory
// are position-sorted by the runner and JSON map keys encode in sorted
// order, so any divergence means nondeterminism crept into the
// pipeline itself — the one place the determinism analyzer cannot
// check from the inside.
func TestJSONByteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module twice; skipped in -short")
	}
	runOnce := func() []byte {
		var out, errb bytes.Buffer
		if code := run([]string{"-root", "../..", "-json"}, &out, &errb); code != 0 {
			t.Fatalf("wirelint exited %d: %s", code, errb.String())
		}
		return out.Bytes()
	}
	a := runOnce()
	b := runOnce()
	if !bytes.Equal(a, b) {
		t.Fatalf("two -json runs differ:\nfirst %d bytes, second %d bytes", len(a), len(b))
	}
	var doc struct {
		Findings []json.RawMessage `json:"findings"`
		Summary  struct {
			Packages    int               `json:"packages"`
			Allowed     int               `json:"allowed"`
			AllowedList []json.RawMessage `json:"allowed_list"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.Findings) != 0 {
		t.Errorf("module has %d live findings; expected clean", len(doc.Findings))
	}
	if doc.Summary.Packages == 0 {
		t.Error("no packages analyzed")
	}
	// The full allow inventory rides along: every exception is visible
	// in the artifact CI uploads.
	if len(doc.Summary.AllowedList) != doc.Summary.Allowed {
		t.Errorf("allow inventory has %d entries, summary says %d",
			len(doc.Summary.AllowedList), doc.Summary.Allowed)
	}
}

// TestSelfLint pins the CI self-lint step: the analyzer package itself
// carries zero findings and zero allow directives.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-root", "../..", "-only", "internal/lint", "-noallow"}, &out, &errb)
	if code != 0 {
		t.Fatalf("self-lint over internal/lint exited %d:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 findings, 0 allowlisted") {
		t.Fatalf("self-lint summary not clean:\n%s", out.String())
	}
}
