// Command wiredump is a tcpdump-style trace inspector for the capture
// files this repository produces (and any Ethernet pcap/pcapng file): it
// applies a BPF filter expression and prints one line per matching
// packet.
//
// Usage:
//
//	wiredump -r trace.pcap [-c count] [-d] [-stats] [filter expression ...]
//
// -d prints the compiled BPF program (like tcpdump -d) and exits.
// -stats prints a metrics snapshot of the read (frames read/matched,
// bytes, decode errors) to stderr on exit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"sort"

	"repro/internal/bpf"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func main() {
	file := flag.String("r", "", "pcap or pcapng file to read (required unless -d)")
	count := flag.Int("c", 0, "stop after this many matching packets (0 = all)")
	dump := flag.Bool("d", false, "print the compiled filter program and exit")
	stats := flag.Bool("stats", false, "print a metrics snapshot of the read to stderr on exit")
	flag.Parse()

	expr := strings.Join(flag.Args(), " ")
	prog, err := bpf.Compile(expr, 65535)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wiredump:", err)
		os.Exit(2)
	}
	if *dump {
		fmt.Print(bpf.Disassemble(prog))
		return
	}
	if *file == "" {
		fmt.Fprintln(os.Stderr, "wiredump: -r is required")
		os.Exit(2)
	}
	if isRecordFile(*file) {
		// A flight-recorder export (wirecap Chrome trace JSON), not a
		// capture file: -stats prints its counter series — including the
		// fleet conservation causes — instead of only single-host metrics.
		if !*stats {
			fmt.Fprintln(os.Stderr, "wiredump:", *file, "is a flight-recorder export, not a capture file; use -stats for its counters, or cmd/wiretrace / cmd/wirestat for forensics")
			os.Exit(2)
		}
		if err := recordStats(*file, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "wiredump:", err)
			os.Exit(1)
		}
		return
	}
	vm, err := bpf.NewVM(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wiredump:", err)
		os.Exit(2)
	}

	src, closeFn, err := openTrace(*file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wiredump:", err)
		os.Exit(1)
	}
	defer closeFn()

	reg := metrics.NewRegistry()
	read := reg.Counter("frames_read")
	match := reg.Counter("frames_matched")
	readBytes := reg.Counter("bytes_read")
	matchBytes := reg.Counter("bytes_matched")
	decodeErrs := reg.Counter("decode_errors")

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	var dec packet.Decoded
	matched := 0
	last := vtime.Time(0)
	for {
		frame, ts, ok := src.Next()
		if !ok {
			break
		}
		read.Inc()
		readBytes.Add(uint64(len(frame)))
		last = ts
		if !vm.Match(frame) {
			continue
		}
		// Decode errors still print the link-level line, as tcpdump does.
		if err := packet.Decode(frame, &dec); err != nil {
			decodeErrs.Inc()
		}
		fmt.Fprintln(w, packet.Format(ts, &dec))
		match.Inc()
		matchBytes.Add(uint64(len(frame)))
		matched++
		if *count > 0 && matched >= *count {
			break
		}
	}
	w.Flush()
	if *stats {
		// The snapshot instant is the last frame's capture timestamp, so
		// identical files always render identical stats.
		if err := reg.Snapshot(last).WriteText(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "wiredump:", err)
		}
	}
	// A source that stopped on a read error (truncated file, implausible
	// record length, ...) rather than clean EOF must fail the command,
	// not just fall silent mid-file.
	if es, ok := src.(interface{ Err() error }); ok {
		if err := es.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "wiredump:", err)
			closeFn()
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "%d packets matched\n", matched)
}

// isRecordFile reports whether the file is a flight-recorder JSON
// export rather than a pcap/pcapng capture (their magics never start
// with '{' or whitespace).
func isRecordFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], 0); err != nil {
		return false
	}
	return b[0] == '{' || b[0] == ' ' || b[0] == '\n' || b[0] == '\t'
}

// recordStats prints a flight-recorder export's counter series: drop
// totals by cause (the fleet conservation causes included), the fleet
// journey/event counts, and the per-host forensics ledger summary.
func recordStats(path string, w *os.File) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rec, err := obs.ReadRecord(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scenario %s end_ns %d\n", rec.Scenario, rec.End)
	causes := make([]string, 0, len(rec.DropTotals))
	for c := range rec.DropTotals {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	for _, c := range causes {
		fmt.Fprintf(w, "drop_total{cause=%s} %d\n", c, rec.DropTotals[c])
	}
	fmt.Fprintf(w, "packet_traces %d\n", len(rec.Packets))
	if len(rec.Journeys) > 0 || len(rec.FleetEvents) > 0 {
		fmt.Fprintf(w, "fleet_journeys %d\n", len(rec.Journeys))
		fmt.Fprintf(w, "fleet_events %d\n", len(rec.FleetEvents))
		fmt.Fprintf(w, "health_lanes %d\n", len(rec.Health))
		return rec.WriteFleetLedger(w, 0)
	}
	return nil
}

// openTrace opens a capture file, auto-detecting pcap versus pcapng.
func openTrace(path string) (trace.Source, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var magic [4]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("reading %s: %w", path, err)
	}
	closeFn := func() { f.Close() }
	if magic == [4]byte{0x0A, 0x0D, 0x0D, 0x0A} {
		rd, err := trace.NewNgReader(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return trace.NewNgSource(rd), closeFn, nil
	}
	rd, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return trace.NewPcapSource(rd), closeFn, nil
}
