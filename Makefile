# Developer checks for the WireCAP reproduction. `make check` is the
# gate every change should pass; `make race` additionally runs the one
# package that uses goroutines (internal/bench's parallel experiment
# runner) under the race detector. `make bench` refreshes
# BENCH_vtime.json from the scheduler microbenchmarks and the
# end-to-end RunConstant measurement.

GO ?= go

.PHONY: check vet build test race bench all

all: check

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/bench/...

bench:
	$(GO) run ./cmd/vtime-bench -o BENCH_vtime.json
