# Developer checks for the WireCAP reproduction. `make ci` mirrors the
# GitHub Actions pipeline exactly: formatting, vet, build, tests, the
# race detector across every package, a time-bounded fuzz pass over the
# BPF backend-equivalence property, and the deterministic regression
# gate (cmd/ci-gate against the committed baselines.json). `make check`
# is the quick subset for inner-loop development.
#
# `make bench` refreshes BENCH_vtime.json; `make bench-check` compares
# against the committed file read-only (the CI mode). `make gate`
# runs the regression gate alone; refresh its baselines after an
# intentional behavior change with `make baselines`.
#
# `make trace` writes trace.json — a Chrome trace-event export of the
# chaos_queue_hang scenario with the flight recorder attached; inspect
# with `go run ./cmd/wiretrace -r trace.json` (or chrome://tracing).
# `make fleet-trace` does the fleet equivalent: the host-kill storm
# traced end to end, plus the rendered wirestat dashboard and journey
# dump (fleet-trace.json, fleet-dashboard.txt, fleet-journeys.txt).
#
# `make lint` runs wirelint (the repo's own analyzer suite in
# internal/lint: walltime, maporder, hotpath, lockdiscipline,
# concurrency, the directive meta-rule, plus the interprocedural
# hotpathflow, determinism, and conservation passes) over the whole
# module, self-lints the analyzer package (zero findings, zero allows
# over internal/lint), then runs staticcheck when a pinned binary is
# available (`make staticcheck-install` fetches it; CI always runs it).

GO ?= go
TRACE_SCENARIO ?= chaos_queue_hang
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: ci check fmt-check vet build test race race-stress fuzz gate bench bench-check baselines chaos fleet-chaos trace fleet-trace lint wirelint selflint wirelint-json staticcheck staticcheck-install all

all: check

ci: fmt-check vet lint build test race race-stress fuzz gate bench-check

check: vet build test

lint: wirelint selflint staticcheck

wirelint:
	$(GO) run ./cmd/wirelint -root .

# The analyzers must hold themselves to their own rules with no
# exceptions at all: zero findings and zero allow directives over
# internal/lint.
selflint:
	$(GO) run ./cmd/wirelint -root . -only internal/lint -noallow

# The machine-readable findings artifact CI uploads: sorted findings
# plus the full allow inventory, byte-deterministic per tree.
wirelint-json:
	$(GO) run ./cmd/wirelint -root . -json > wirelint-findings.json

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (run 'make staticcheck-install', CI runs it always)"; \
	fi

staticcheck-install:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Repeated race-detector runs over the parallel executive: the domain
# runtime itself plus every placement-equivalence test in the bench
# package. Scheduling nondeterminism across goroutines is exactly what
# these tests exist to prove harmless, so they get extra repetitions.
race-stress:
	$(GO) test -race -count=5 ./internal/vtime/domain/...
	$(GO) test -race -count=5 -run 'Fleet|Domains' ./internal/bench/...

# Time-bounded coverage-guided fuzzing of the BPF backend-equivalence
# property: interpreter, closure JIT, flattened bytecode, and fused
# predicates must agree on every (expression, packet) the fuzzer finds.
fuzz:
	$(GO) test -fuzz=FuzzBackendsAgree -fuzztime=30s ./internal/bpf

gate:
	$(GO) run ./cmd/ci-gate

baselines:
	$(GO) run ./cmd/ci-gate -update

chaos:
	$(GO) run ./cmd/experiments -run chaos

# The fleet-resilience report: the fleet_chaos_* scenarios the gate
# replays (conservation + delivery floor re-checked inline) plus the
# host-kill degradation table.
fleet-chaos:
	$(GO) run ./cmd/experiments -run fleet

trace:
	$(GO) run ./cmd/experiments -trace trace.json -tracescenario $(TRACE_SCENARIO)

# The fleet observability bundle (EXPERIMENTS.md "Reading a fleet
# dashboard"): the host-kill storm traced with journeys, health lanes,
# and the forensics ledger, then rendered by wirestat.
fleet-trace:
	$(GO) run ./cmd/experiments -trace fleet-trace.json -tracescenario fleet_chaos_host_kill
	$(GO) run ./cmd/wirestat -r fleet-trace.json > fleet-dashboard.txt
	$(GO) run ./cmd/wirestat -r fleet-trace.json -journeys > fleet-journeys.txt

bench:
	$(GO) run ./cmd/vtime-bench -o BENCH_vtime.json

bench-check:
	$(GO) run ./cmd/vtime-bench -check
