package repro

// One benchmark per table and figure of the paper's evaluation. Each
// iteration executes the (scaled) experiment end to end on the simulated
// substrate and reports the headline quantities as benchmark metrics, so
// `go test -bench=. -benchmem` regenerates the whole evaluation and
// EXPERIMENTS.md can quote the numbers. cmd/experiments prints the same
// results as full tables, at any scale.

import (
	"testing"

	"repro/internal/bench"
)

// benchScale keeps each iteration around a second; raise it toward 1.0 to
// approach the paper's exact workload sizes.
const benchScale = 0.1

func reportDropRate(b *testing.B, label string, rate float64) {
	b.ReportMetric(100*rate, label+"-drop-%")
}

func BenchmarkFig3LoadImbalance(b *testing.B) {
	opt := bench.Options{Scale: benchScale, Seed: 2014}
	for i := 0; i < b.N; i++ {
		_, prof, err := bench.Fig3(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(prof.Total(0)), "hotq-pkts")
			b.ReportMetric(float64(prof.Peak(3)), "warmq-peak/10ms")
		}
	}
}

func BenchmarkTable1Drops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range []bench.EngineSpec{bench.NETMAP, bench.DNA, bench.PFRing} {
			res, offered, err := bench.RunBorder(bench.BorderRun{
				Spec: spec, Queues: 6, X: 300, Scale: benchScale, Seed: 2014,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				reportDropRate(b, spec.Name()+"-q0cap", res.CaptureDropRate(0, offered[0]))
				reportDropRate(b, spec.Name()+"-q0del", res.DeliveryDropRate(0, offered[0]))
			}
		}
	}
}

func BenchmarkFig8BasicNoLoad(b *testing.B) {
	specs := []bench.EngineSpec{bench.DNA, bench.PFRing, bench.NETMAP, bench.WireCAPB(256, 100)}
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			res, err := bench.RunConstant(bench.ConstantRun{Spec: spec, Packets: 100_000, X: 0, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				reportDropRate(b, spec.Name(), res.DropRate())
			}
		}
	}
}

func BenchmarkFig9BasicHeavyLoad(b *testing.B) {
	specs := []bench.EngineSpec{bench.DNA, bench.WireCAPB(256, 100), bench.WireCAPB(256, 500)}
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			res, err := bench.RunConstant(bench.ConstantRun{Spec: spec, Packets: 100_000, X: 300, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				reportDropRate(b, spec.Name()+"@P=1e5", res.DropRate())
			}
		}
	}
}

func BenchmarkFig10RMInvariance(b *testing.B) {
	specs := []bench.EngineSpec{bench.WireCAPB(64, 400), bench.WireCAPB(128, 200), bench.WireCAPB(256, 100)}
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			res, err := bench.RunConstant(bench.ConstantRun{Spec: spec, Packets: 60_000, X: 300, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				reportDropRate(b, spec.Name(), res.DropRate())
			}
		}
	}
}

func BenchmarkFig11AdvancedMode(b *testing.B) {
	specs := []bench.EngineSpec{
		bench.DNA, bench.WireCAPB(256, 100), bench.WireCAPA(256, 100, 60),
	}
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			res, _, err := bench.RunBorder(bench.BorderRun{
				Spec: spec, Queues: 6, X: 300, Scale: benchScale, Seed: 2014,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				reportDropRate(b, spec.Name(), res.DropRate())
			}
		}
	}
}

func BenchmarkFig12ThresholdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, t := range []int{60, 90} {
			res, _, err := bench.RunBorder(bench.BorderRun{
				Spec: bench.WireCAPA(256, 100, t), Queues: 4, X: 300, Scale: benchScale, Seed: 2014,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				reportDropRate(b, res.Spec.Name(), res.DropRate())
			}
		}
	}
}

func BenchmarkFig13Forwarding(b *testing.B) {
	specs := []bench.EngineSpec{bench.DNA, bench.WireCAPA(256, 100, 60)}
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			res, _, err := bench.RunBorder(bench.BorderRun{
				Spec: spec, Queues: 4, X: 300, Scale: benchScale, Seed: 2014, Forward: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				reportDropRate(b, spec.Name()+"-e2e", res.DropRate())
			}
		}
	}
}

func BenchmarkFig14Scalability(b *testing.B) {
	type cfg struct {
		spec  bench.EngineSpec
		frame int
	}
	cfgs := []cfg{
		{bench.DNA, 60},
		{bench.WireCAPA(256, 100, 60), 60},
		{bench.WireCAPA(256, 100, 60), 96},
	}
	for i := 0; i < b.N; i++ {
		for _, c := range cfgs {
			rate, err := bench.RunScalability(bench.ScalabilityRun{
				Spec: c.spec, QueuesPerNIC: 2, FrameLen: c.frame,
				Packets: 300_000, Seed: 2014,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				label := "64B"
				if c.frame == 96 {
					label = "100B"
				}
				reportDropRate(b, c.spec.Name()+"@"+label, rate)
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures the substrate itself: how many
// simulated wire-rate packets per second of real time the discrete-event
// engine sustains end to end (NIC -> WireCAP -> handler).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunConstant(bench.ConstantRun{
			Spec: bench.WireCAPB(256, 100), Packets: 200_000, X: 0, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Totals().Delivered == 0 {
			b.Fatal("nothing delivered")
		}
	}
	b.ReportMetric(float64(200_000*b.N)/b.Elapsed().Seconds(), "sim-pkts/s")
}
